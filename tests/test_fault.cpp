// Runtime fault injection (sim/fault.hpp): campaigns must be survivable
// (Lemmas 2-3 are self-stabilization claims — crash-restarts, scrambles,
// duplication bursts and partition windows may delay but never derail
// convergence), measurable (RecoveryMonitor closes every perturbation),
// and deterministic (fault streams are seeded; worker count and World
// reuse must not change a single action).
#include "sim/fault.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>

#include "analysis/driver.hpp"
#include "analysis/experiment.hpp"
#include "analysis/monitors.hpp"
#include "core/oracle.hpp"
#include "util/rng.hpp"

namespace fdp {
namespace {

ScenarioConfig corrupted_config(std::uint64_t seed, std::size_t n = 16) {
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.topology = "wild";
  cfg.leave_fraction = 0.3;
  cfg.invalid_mode_prob = 0.3;
  cfg.random_anchor_prob = 0.2;
  cfg.inflight_per_node = 1.0;
  cfg.seed = seed;
  return cfg;
}

FaultPlan full_campaign() {
  FaultPlan plan;
  plan.at(50, FaultKind::CrashRestart)
      .at(150, FaultKind::Scramble)
      .at(250, FaultKind::DuplicateBurst, 6)
      .at(350, FaultKind::PartitionStart);
  plan.partition_window = 48;
  plan.p_crash = 0.002;
  plan.p_scramble = 0.002;
  plan.p_duplicate = 0.002;
  plan.stochastic_until = 900;
  return plan;
}

TEST(FaultPlan, ValidateCatchesMalformedPlans) {
  FaultPlan p;
  EXPECT_TRUE(p.validate().empty());
  EXPECT_TRUE(p.empty());

  p.p_crash = 1.5;
  EXPECT_FALSE(p.validate().empty());
  p.p_crash = 0.1;
  // Stochastic probability without a horizon would silently inject nothing.
  EXPECT_FALSE(p.validate().empty());
  p.stochastic_until = 100;
  EXPECT_TRUE(p.validate().empty());
  EXPECT_FALSE(p.empty());

  p.partition_window = 0;
  EXPECT_FALSE(p.validate().empty());
  p.partition_window = 32;

  p.at(90, FaultKind::Scramble).at(40, FaultKind::CrashRestart);
  EXPECT_FALSE(p.validate().empty());  // events out of order
}

TEST(FaultSchedulerDeathTest, NextWithoutBindDies) {
  FaultScheduler fs(SchedulerSpec::of(SchedulerKind::Random).make(),
                    FaultPlan{}.at(1, FaultKind::Scramble), 7);
  Scenario sc = build_departure_scenario(corrupted_config(3, 8));
  EXPECT_DEATH((void)sc.world->step(fs), "bind");
}

// The contract of Process::fault_crash_restart / fault_scramble: the
// distinct set of held references must be preserved (a fault corrupts
// knowledge, it does not destroy references — that is what keeps Lemma 2
// applicable), and no reference may come back with Unknown mode info.
TEST(Fault, CrashRestartPreservesDistinctReferenceSet) {
  Scenario sc = build_departure_scenario(corrupted_config(11));
  Rng rng(99);
  for (ProcessId p = 0; p < sc.world->size(); ++p) {
    auto& proc = sc.world->process_as<DepartureProcess>(p);
    std::set<ProcessId> before;
    for (const RefInfo& v : proc.nbrs().snapshot()) before.insert(v.ref.id());
    if (proc.anchor()) before.insert(proc.anchor()->ref.id());

    ASSERT_TRUE(proc.fault_crash_restart(rng));

    std::set<ProcessId> after;
    for (const RefInfo& v : proc.nbrs().snapshot()) {
      EXPECT_NE(v.mode, ModeInfo::Unknown);
      after.insert(v.ref.id());
    }
    if (proc.anchor()) {
      EXPECT_NE(proc.anchor()->mode, ModeInfo::Unknown);
      after.insert(proc.anchor()->ref.id());
    }
    EXPECT_EQ(before, after);
  }
}

TEST(Fault, ScramblePreservesDistinctReferenceSet) {
  Scenario sc = build_departure_scenario(corrupted_config(12));
  Rng rng(100);
  for (ProcessId p = 0; p < sc.world->size(); ++p) {
    auto& proc = sc.world->process_as<DepartureProcess>(p);
    std::set<ProcessId> before;
    for (const RefInfo& v : proc.nbrs().snapshot()) before.insert(v.ref.id());
    if (proc.anchor()) before.insert(proc.anchor()->ref.id());

    ASSERT_TRUE(proc.fault_scramble(rng));

    std::set<ProcessId> after;
    for (const RefInfo& v : proc.nbrs().snapshot()) {
      EXPECT_NE(v.mode, ModeInfo::Unknown);
      after.insert(v.ref.id());
    }
    if (proc.anchor()) after.insert(proc.anchor()->ref.id());
    EXPECT_EQ(before, after);
  }
}

// The headline robustness claim: a full campaign — scheduled crash,
// scramble, duplication burst, partition window, plus a stochastic
// regime — never breaks safety, never registers a protocol Φ increase,
// and every perturbation gets a finite measured recovery.
class FaultCampaignSweep : public testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultCampaignSweep, CampaignIsSurvivedAndMeasured) {
  Scenario sc = build_departure_scenario(corrupted_config(GetParam()));
  ExperimentSpec spec;
  spec.max_steps(400'000)
      .monitors(true, 1)
      .closure_steps(200)
      .faults(full_campaign());
  const RunResult r = run_to_legitimacy(sc, spec);

  EXPECT_TRUE(r.reached_legitimate) << r.failure;
  EXPECT_TRUE(r.safety_ok) << r.failure;
  EXPECT_TRUE(r.phi_monotone) << r.failure;
  EXPECT_TRUE(r.audit_ok) << r.failure;
  EXPECT_TRUE(r.closure_held);
  EXPECT_GE(r.faults_injected, 4u);  // at least the scheduled events
  EXPECT_EQ(r.faults_recovered, r.faults_injected);
  EXPECT_GT(r.recovery_steps_max, 0u);
  EXPECT_LT(r.recovery_steps_max, RecoveryMonitor::kNotRecovered);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultCampaignSweep,
                         testing::Range<std::uint64_t>(1, 9));

// A run must not terminate "legitimate" while the campaign is still
// pending: schedule the only fault far beyond natural convergence and
// check it still fires (exhausted() gates termination).
TEST(Fault, RunWaitsForPendingScheduledFaults) {
  Scenario sc = build_departure_scenario(corrupted_config(5, 10));
  FaultPlan plan;
  plan.at(40'000, FaultKind::CrashRestart);
  ExperimentSpec spec;
  spec.max_steps(400'000).monitors(true, 1).faults(plan);
  const RunResult r = run_to_legitimacy(sc, spec);
  EXPECT_TRUE(r.reached_legitimate) << r.failure;
  EXPECT_EQ(r.faults_injected, 1u);
  EXPECT_EQ(r.faults_recovered, 1u);
  EXPECT_GT(r.steps, 40'000u);
}

// Oracle false negatives ("you still have incident edges" when the truth
// is no) are safe lies: exits are delayed, never wrongly granted. The run
// must still converge with clean monitors.
class LyingOracleSweep : public testing::TestWithParam<std::uint64_t> {};

TEST_P(LyingOracleSweep, FalseNegativesOnlyDelayConvergence) {
  ScenarioConfig cfg = corrupted_config(GetParam(), 12);
  cfg.oracle_p_false_neg = 0.5;
  Scenario sc = build_departure_scenario(cfg);
  ExperimentSpec spec;
  spec.max_steps(800'000).monitors(true, 1);
  const RunResult r = run_to_legitimacy(sc, spec);
  EXPECT_TRUE(r.reached_legitimate) << r.failure;
  EXPECT_TRUE(r.safety_ok) << r.failure;
  EXPECT_TRUE(r.phi_monotone) << r.failure;
}

INSTANTIATE_TEST_SUITE_P(Seeds, LyingOracleSweep,
                         testing::Range<std::uint64_t>(1, 7));

// Oracle false positives grant exits the oracle contract forbids; on a
// line where most leavers are cut vertices that eventually disconnects a
// stayer, and the instrumentation — not the protocol — must catch it.
// Negative testing OF THE MONITORS, like Chaos.MessageLossIsDetected.
TEST(Fault, FalsePositiveOracleIsCaughtByTheMonitors) {
  bool detected = false;
  for (std::uint64_t seed = 1; seed <= 12 && !detected; ++seed) {
    ScenarioConfig cfg;
    cfg.n = 10;
    cfg.topology = "line";
    cfg.leave_fraction = 0.4;
    cfg.seed = seed;
    cfg.oracle_p_false_pos = 0.8;
    Scenario sc = build_departure_scenario(cfg);
    ExperimentSpec spec;
    spec.max_steps(100'000).monitors(true, 1);
    const RunResult r = run_to_legitimacy(sc, spec);
    if (!r.safety_ok || !r.reached_legitimate) detected = true;
  }
  EXPECT_TRUE(detected);
}

// --- driver crash isolation -------------------------------------------

ExperimentSpec sweep_spec(std::uint64_t seeds) {
  ScenarioSpec scen;
  scen.config = corrupted_config(0, 12);
  ExperimentSpec spec;
  spec.scenario(scen).seeds(1, seeds).max_steps(400'000).faults(
      full_campaign());
  return spec;
}

struct TrialFingerprint {
  std::uint64_t seed, steps, sends, exits, injected, recovered, worst;
  bool solved, threw;
  unsigned attempts;

  friend bool operator==(const TrialFingerprint&,
                         const TrialFingerprint&) = default;
};

std::vector<TrialFingerprint> fingerprints(const ExperimentResult& res) {
  std::vector<TrialFingerprint> out;
  for (const TrialResult& t : res.trials) {
    out.push_back({t.seed, t.run.steps, t.run.sends, t.run.exits,
                   t.run.faults_injected, t.run.faults_recovered,
                   t.run.recovery_steps_max, t.run.reached_legitimate,
                   t.threw, t.attempts});
  }
  return out;
}

TEST(Driver, ThrowingTrialIsIsolatedAndSweepCompletes) {
  constexpr std::uint64_t kPoisoned = 4;
  ExperimentSpec spec = sweep_spec(8);
  spec.on_trial_start([](std::uint64_t seed) {
    if (seed == kPoisoned) throw std::runtime_error("injected test failure");
  });

  const ExperimentResult res = ExperimentDriver(4).run(spec);
  ASSERT_EQ(res.trials.size(), 8u);
  EXPECT_EQ(res.agg.trials, 8u);
  EXPECT_EQ(res.agg.exceptions, 1u);
  EXPECT_EQ(res.agg.solved, 7u);
  for (const TrialResult& t : res.trials) {
    if (t.seed == kPoisoned) {
      EXPECT_TRUE(t.threw);
      EXPECT_FALSE(t.run.reached_legitimate);
      EXPECT_NE(t.run.failure.find("trial threw"), std::string::npos)
          << t.run.failure;
      EXPECT_NE(t.run.failure.find("injected test failure"),
                std::string::npos);
    } else {
      EXPECT_FALSE(t.threw);
      EXPECT_TRUE(t.run.reached_legitimate) << t.run.failure;
    }
  }

  // Aggregation stays deterministic and worker-count invariant even with
  // a poisoned trial in the sweep.
  spec.workers(1);
  const ExperimentResult seq = ExperimentDriver(1).run(spec);
  EXPECT_EQ(fingerprints(res), fingerprints(seq));
  EXPECT_EQ(res.agg.verdict(), seq.agg.verdict());
}

TEST(Driver, OptInRetrySalvagesTransientFailures) {
  constexpr std::uint64_t kFlaky = 3;
  ExperimentSpec spec = sweep_spec(6);
  auto first_attempts = std::make_shared<std::atomic<int>>(0);
  spec.retries(1).on_trial_start([first_attempts](std::uint64_t seed) {
    if (seed == kFlaky && first_attempts->fetch_add(1) == 0)
      throw std::runtime_error("transient");
  });

  const ExperimentResult res = ExperimentDriver(2).run(spec);
  EXPECT_EQ(res.agg.exceptions, 0u);
  EXPECT_EQ(res.agg.solved, 6u);
  EXPECT_TRUE(res.agg.clean()) << res.agg.verdict();
  for (const TrialResult& t : res.trials) {
    EXPECT_EQ(t.attempts, t.seed == kFlaky ? 2u : 1u);
    EXPECT_FALSE(t.threw);
  }
}

TEST(Driver, ExhaustedRetriesRecordTheFailure) {
  ExperimentSpec spec = sweep_spec(3);
  spec.retries(2).on_trial_start([](std::uint64_t seed) {
    if (seed == 2) throw std::runtime_error("permanent");
  });
  const ExperimentResult res = ExperimentDriver(1).run(spec);
  EXPECT_EQ(res.agg.exceptions, 1u);
  EXPECT_EQ(res.agg.solved, 2u);
  EXPECT_EQ(res.trials[1].attempts, 3u);  // 1 + retries(2)
  EXPECT_TRUE(res.trials[1].threw);
}

TEST(Driver, WallClockTimeoutFailsTheTrialNotTheSweep) {
  ExperimentSpec spec = sweep_spec(2);
  spec.trial_timeout(1e-9);  // expires before the first deadline check
  const ExperimentResult res = ExperimentDriver(1).run(spec);
  EXPECT_EQ(res.agg.solved, 0u);
  EXPECT_EQ(res.agg.exceptions, 0u);  // a timeout is a result, not a crash
  for (const TrialResult& t : res.trials) {
    EXPECT_FALSE(t.run.reached_legitimate);
    EXPECT_NE(t.run.failure.find("wall-clock"), std::string::npos)
        << t.run.failure;
  }
}

// --- partition window close --------------------------------------------

// Records every fault announcement with the step it arrived at.
class FaultLog final : public Observer {
 public:
  struct Ev {
    FaultKind kind;
    bool applied;
    std::uint64_t step;
  };
  void on_action(const Substrate& world, const ActionRecord& rec) override {
    (void)world;
    (void)rec;
  }
  void on_fault(const Substrate& world, FaultKind kind, ProcessId target,
                bool applied) override {
    (void)target;
    events.push_back({kind, applied, world.clock()});
  }
  std::vector<Ev> events;
};

// Every PartitionStart must be matched by a PartitionEnd announcement when
// the window closes — that boundary is where the RecoveryMonitor rebases
// the window's recovery clock (the cut only delays progress, so drain and
// re-legitimacy are attributed to the release of withheld deliveries).
TEST(Fault, PartitionWindowCloseIsAnnounced) {
  Scenario sc = build_departure_scenario(corrupted_config(7));
  FaultPlan plan;
  plan.at(50, FaultKind::PartitionStart);
  plan.partition_window = 48;
  FaultScheduler fs(SchedulerSpec::of(SchedulerKind::Random).make(), plan,
                    /*seed=*/99);
  fs.bind(sc.world.get());
  FaultLog log;
  RecoveryMonitor recovery(*sc.world, Exclusion::Gone, /*stride=*/1);
  sc.world->add_observer(&log);
  sc.world->add_observer(&recovery);
  for (int i = 0; i < 30'000; ++i)
    if (!sc.world->step(fs)) break;
  recovery.finalize(*sc.world);

  std::uint64_t opened = 0, closed = 0, open_step = 0, close_step = 0;
  for (const FaultLog::Ev& ev : log.events) {
    if (ev.kind == FaultKind::PartitionStart && ev.applied) {
      ++opened;
      open_step = ev.step;
    }
    if (ev.kind == FaultKind::PartitionEnd && ev.applied) {
      ++closed;
      close_step = ev.step;
    }
  }
  ASSERT_EQ(opened, 1u);
  ASSERT_EQ(closed, 1u);
  EXPECT_GE(close_step, open_step + plan.partition_window);

  // The recovery clock was rebased to the close boundary: the measured
  // recovery must be shorter than "steps since the window opened".
  EXPECT_EQ(recovery.injected(), 1u);
  EXPECT_EQ(recovery.recovered(), 1u);
  EXPECT_LT(recovery.worst_relegit_steps(), RecoveryMonitor::kNotRecovered);
}

// --- determinism -------------------------------------------------------

TEST(FaultDeterminism, SweepIsWorkerCountInvariant) {
  ExperimentSpec spec = sweep_spec(8);
  spec.monitors(true, 8);
  spec.workers(1);
  const ExperimentResult w1 = ExperimentDriver(1).run(spec);
  spec.workers(8);
  const ExperimentResult w8 = ExperimentDriver(8).run(spec);
  EXPECT_EQ(fingerprints(w1), fingerprints(w8));
  EXPECT_EQ(w1.agg.verdict(), w8.agg.verdict());
  EXPECT_GT(w1.agg.faults_injected, 0u);
}

// FNV-1a over the executed action stream (same mixer as the GoldenTrace
// suite): a fresh world and a reset-reused world must replay a
// fault-injected run action for action.
class TraceHasher final : public Observer {
 public:
  void on_action(const Substrate& world, const ActionRecord& rec) override {
    (void)world;
    mix(static_cast<std::uint64_t>(rec.kind));
    mix(rec.actor);
    mix(rec.consumed ? rec.consumed->seq : 0);
    mix(rec.sent.size());
    mix((rec.exited ? 1u : 0u) | (rec.slept ? 2u : 0u) | (rec.woke ? 4u : 0u));
  }
  void on_fault(const Substrate& world, FaultKind kind, ProcessId target,
                bool applied) override {
    (void)world;
    mix(static_cast<std::uint64_t>(kind));
    mix(target);
    mix(applied ? 1 : 0);
  }
  [[nodiscard]] std::uint64_t hash() const { return h_; }

 private:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xff;
      h_ *= 0x100000001b3ULL;
    }
  }
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

std::uint64_t faulted_trace(std::unique_ptr<World> reuse,
                            std::unique_ptr<World>* retired) {
  ScenarioSpec scen;
  scen.config = corrupted_config(0, 16);
  Scenario sc = scen.build(2026, std::move(reuse));
  FaultScheduler fs(SchedulerSpec::of(SchedulerKind::Random).make(), full_campaign(),
                    /*seed=*/515);
  fs.bind(sc.world.get());
  TraceHasher hasher;
  sc.world->add_observer(&hasher);
  for (int i = 0; i < 30'000; ++i)
    if (!sc.world->step(fs)) break;
  EXPECT_GT(fs.injected(), 0u);
  sc.world->remove_observer(&hasher);
  if (retired != nullptr) *retired = std::move(sc.world);
  return hasher.hash();
}

TEST(FaultDeterminism, ResetReuseReplaysByteIdentically) {
  std::unique_ptr<World> retired;
  const std::uint64_t fresh = faulted_trace(nullptr, &retired);
  ASSERT_NE(retired, nullptr);
  const std::uint64_t reused = faulted_trace(std::move(retired), nullptr);
  EXPECT_EQ(fresh, reused);
}

}  // namespace
}  // namespace fdp
