// Theorem 4 end-to-end: the wrapped protocol P' excludes all leaving
// processes (FDP) AND still solves P's problem — the staying processes
// converge to P's legitimate topology — from corrupted initial states.
#include <gtest/gtest.h>

#include "analysis/experiment.hpp"
#include "core/framework.hpp"
#include "core/oracle.hpp"
#include "overlay/topology_checks.hpp"

namespace fdp {
namespace {

struct Case {
  const char* overlay;
  std::uint64_t seed;
  double corruption;
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  return std::string(info.param.overlay) + "_s" +
         std::to_string(info.param.seed) + "_c" +
         std::to_string(static_cast<int>(info.param.corruption * 100));
}

class WrappedOverlayDepartures : public testing::TestWithParam<Case> {};

TEST_P(WrappedOverlayDepartures, ExcludesLeaversAndConverges) {
  const Case& c = GetParam();
  ScenarioConfig cfg;
  cfg.n = 8;
  cfg.topology = "wild";
  cfg.leave_fraction = 0.3;
  cfg.invalid_mode_prob = c.corruption;
  cfg.random_anchor_prob = c.corruption * 0.5;
  cfg.inflight_per_node = c.corruption;
  cfg.seed = c.seed;

  Scenario sc = build_framework_scenario(cfg, c.overlay);
  ExperimentSpec opt;
  opt.max_steps(1'500'000);
  opt.scheduler(SchedulerSpec::of(SchedulerKind::Random));
  const RunResult r = run_to_legitimacy(sc, opt);
  ASSERT_TRUE(r.reached_legitimate) << c.overlay << ": " << r.failure;
  EXPECT_EQ(r.exits, sc.leaving_count);

  // After the departures, P must still converge for the stayers.
  RandomScheduler sched;
  bool converged = false;
  std::string last_detail;
  for (int block = 0; block < 600 && !converged; ++block) {
    for (int i = 0; i < 300; ++i) (void)sc.world->step(sched);
    const TopologyVerdict v = check_topology(*sc.world, c.overlay);
    converged = v.converged;
    last_detail = v.detail;
  }
  EXPECT_TRUE(converged) << c.overlay << ": " << last_detail;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WrappedOverlayDepartures,
    testing::Values(Case{"linearization", 1, 0.0},
                    Case{"linearization", 2, 0.4},
                    Case{"linearization", 3, 0.4},
                    Case{"ring", 1, 0.0},
                    Case{"ring", 2, 0.4},
                    Case{"clique", 1, 0.0},
                    Case{"clique", 2, 0.4},
                    Case{"star", 1, 0.0},
                    Case{"star", 2, 0.4},
                    Case{"star", 3, 0.0},
                    Case{"skiplist", 1, 0.0},
                    Case{"skiplist", 2, 0.4},
                    Case{"skiplist", 3, 0.4}),
    case_name);

TEST(WrappedOverlay, SafetyMonitoredRun) {
  ScenarioConfig cfg;
  cfg.n = 8;
  cfg.topology = "gnp";
  cfg.leave_fraction = 0.25;
  cfg.invalid_mode_prob = 0.3;
  cfg.seed = 11;
  Scenario sc = build_framework_scenario(cfg, "linearization");
  ExperimentSpec opt;
  opt.max_steps(700'000);
  opt.monitors(true, 4);  // snapshots are pricier with framework refs
  const RunResult r = run_to_legitimacy(sc, opt);
  EXPECT_TRUE(r.reached_legitimate) << r.failure;
  EXPECT_TRUE(r.safety_ok) << r.failure;
  EXPECT_TRUE(r.audit_ok) << r.failure;
}

TEST(WrappedOverlay, FspVariantHibernates) {
  ScenarioConfig cfg;
  cfg.n = 8;
  cfg.topology = "gnp";
  cfg.leave_fraction = 0.25;
  cfg.policy = DeparturePolicy::Sleep;
  cfg.seed = 13;
  Scenario sc = build_framework_scenario(cfg, "star");
  ExperimentSpec opt;
  opt.max_steps(1'000'000);
  const RunResult r = run_to_legitimacy(sc, opt.exclusion(Exclusion::Hibernating));
  EXPECT_TRUE(r.reached_legitimate) << r.failure;
  EXPECT_EQ(sc.world->exits(), 0u);
}

TEST(WrappedOverlay, CenterOfStarCanLeave) {
  // The worst case for the star: the center itself departs. Build keys so
  // process 0 (center, min key) leaves.
  World w(5);
  std::vector<Ref> refs;
  refs.push_back(w.spawn<FrameworkProcess>(Mode::Leaving, 1,
                                           make_overlay("star")));
  for (std::uint64_t i = 1; i < 7; ++i) {
    refs.push_back(w.spawn<FrameworkProcess>(Mode::Staying, 10 * i + 10,
                                             make_overlay("star")));
  }
  // Star topology centered at the leaver.
  for (ProcessId p = 1; p < 7; ++p) {
    w.process_as<FrameworkProcess>(0).overlay_mut().integrate(
        RefInfo{refs[p], ModeInfo::Staying, w.process(p).key()});
    w.process_as<FrameworkProcess>(p).overlay_mut().integrate(
        RefInfo{refs[0], ModeInfo::Leaving, 1});
  }
  w.set_oracle(oracle_by_name("single"));
  RandomScheduler sched;
  for (int i = 0; i < 400'000 && w.exits() == 0; ++i) (void)w.step(sched);
  EXPECT_EQ(w.exits(), 1u);
  // The stayers must re-form a star around the new minimum.
  bool converged = false;
  std::string detail;
  for (int block = 0; block < 400 && !converged; ++block) {
    for (int i = 0; i < 300; ++i) (void)w.step(sched);
    const TopologyVerdict v = check_topology(w, "star");
    converged = v.converged;
    detail = v.detail;
  }
  EXPECT_TRUE(converged) << detail;
}

}  // namespace
}  // namespace fdp
