// Theorem 2: every primitive is necessary. Exhaustive reachability over
// small state spaces plus the invariant arguments from the proof.
#include "universality/reachability.hpp"

#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "universality/rewriter.hpp"

namespace fdp {
namespace {

DiGraph edge01(std::size_t n = 2) {
  DiGraph g(n);
  g.add_edge(0, 1);
  return g;
}

TEST(Reachability, EncodeDecodeRoundTrip) {
  ReachabilityExplorer ex(3, 2);
  DiGraph g(3);
  g.add_edge(0, 1, 2);
  g.add_edge(2, 0);
  const DiGraph back = ex.decode(ex.encode(g));
  EXPECT_TRUE(back == g);
}

TEST(Reachability, ReversalNecessary_PaperExample) {
  // G = {(u,v)}, G' = {(v,u)}: unreachable without Reversal even with
  // unlimited Introduction/Delegation/Fusion (within the cap).
  ReachabilityExplorer ex(2, 3);
  DiGraph target(2);
  target.add_edge(1, 0);
  EXPECT_FALSE(ex.reachable(edge01(), target,
                            kAllowIntroduction | kAllowDelegation |
                                kAllowFusion));
  EXPECT_TRUE(ex.reachable(edge01(), target, kAllowAll));
}

TEST(Reachability, IntroductionNecessary_CannotGrow) {
  // Without Introduction no target with more edges is reachable.
  ReachabilityExplorer ex(2, 3);
  DiGraph target(2);
  target.add_edge(0, 1);
  target.add_edge(1, 0);
  EXPECT_FALSE(ex.reachable(edge01(), target,
                            kAllowDelegation | kAllowFusion |
                                kAllowReversal));
  EXPECT_TRUE(ex.reachable(edge01(), target, kAllowAll));
}

TEST(Reachability, FusionNecessary_CannotShrink) {
  // Start with a 3-clique, target a line: fewer edges — fusion required.
  ReachabilityExplorer ex(3, 2);
  const DiGraph start = gen::clique(3);
  const DiGraph target = gen::line(3);
  EXPECT_FALSE(ex.reachable(start, target,
                            kAllowIntroduction | kAllowDelegation |
                                kAllowReversal));
  EXPECT_TRUE(ex.reachable(start, target, kAllowAll));
}

TEST(Reachability, DelegationNecessary_AdjacencyPersists) {
  // Without Delegation, two adjacent processes can never become
  // non-adjacent: from the triangle 0-1-2 (bidirected), reach the state
  // where 0 and 1 share no edge but the graph is still connected.
  ReachabilityExplorer ex(3, 2);
  DiGraph start(3);
  start.add_edge(0, 1);
  start.add_edge(1, 0);
  start.add_edge(1, 2);
  start.add_edge(2, 1);
  start.add_edge(0, 2);
  start.add_edge(2, 0);
  DiGraph target(3);  // path 0-2-1, no 0<->1 edge
  target.add_edge(0, 2);
  target.add_edge(2, 0);
  target.add_edge(2, 1);
  target.add_edge(1, 2);
  EXPECT_FALSE(ex.reachable(start, target,
                            kAllowIntroduction | kAllowFusion |
                                kAllowReversal));
  EXPECT_TRUE(ex.reachable(start, target, kAllowAll));
}

TEST(Reachability, AllFourReachManyStates) {
  ReachabilityExplorer ex(2, 2);
  const auto all = ex.explore(edge01(), kAllowAll);
  // With both primitives of growth and shrinkage, every nonzero weakly
  // connected 2-node multigraph within the cap is reachable: multiplicity
  // combos (a,b) != (0,0) with a,b <= 2 -> 8 states.
  EXPECT_EQ(all.size(), 8u);
}

TEST(Reachability, EdgeCountMonotoneWithoutIntroduction) {
  // Invariant form of the proof: delegation/fusion/reversal never
  // increase the total edge count (checked on the rewriter directly).
  Rng rng(5);
  DiGraph g = gen::random_weakly_connected(5, 3, 0.5, rng);
  GraphRewriter rw(std::move(g));
  std::uint64_t last = rw.graph().edge_count();
  for (int i = 0; i < 2000; ++i) {
    const NodeId u = static_cast<NodeId>(rng.below(5));
    const NodeId v = static_cast<NodeId>(rng.below(5));
    const NodeId w = static_cast<NodeId>(rng.below(5));
    switch (rng.below(3)) {
      case 0: (void)rw.apply(RewriteOp::delegation(u, v, w)); break;
      case 1: (void)rw.apply(RewriteOp::fusion(u, v)); break;
      case 2: (void)rw.apply(RewriteOp::reversal(u, v)); break;
    }
    EXPECT_LE(rw.graph().edge_count(), last);
    last = rw.graph().edge_count();
  }
}

TEST(Reachability, EdgeCountMonotoneWithoutFusion) {
  Rng rng(6);
  DiGraph g = gen::random_weakly_connected(5, 3, 0.5, rng);
  GraphRewriter rw(std::move(g));
  std::uint64_t last = rw.graph().edge_count();
  for (int i = 0; i < 2000; ++i) {
    const NodeId u = static_cast<NodeId>(rng.below(5));
    const NodeId v = static_cast<NodeId>(rng.below(5));
    const NodeId w = static_cast<NodeId>(rng.below(5));
    switch (rng.below(3)) {
      case 0: (void)rw.apply(RewriteOp::introduction(u, v, w)); break;
      case 1: (void)rw.apply(RewriteOp::delegation(u, v, w)); break;
      case 2: (void)rw.apply(RewriteOp::reversal(u, v)); break;
    }
    EXPECT_GE(rw.graph().edge_count(), last);
    last = rw.graph().edge_count();
  }
}

TEST(Reachability, ExploredStatesStayWeaklyConnected) {
  // Lemma 1 over the entire reachable space of a small start graph.
  ReachabilityExplorer ex(3, 2);
  const auto states = ex.explore(gen::line(3), kAllowAll);
  int disconnected = 0;
  for (const StateCode code : states) {
    if (!is_weakly_connected(ex.decode(code))) ++disconnected;
  }
  EXPECT_EQ(disconnected, 0);
  EXPECT_GT(states.size(), 10u);
}

TEST(ReachabilityDeath, TooLargeStateSpaceAborts) {
  // 4 nodes -> 12 ordered pairs; cap 63 -> 64^12 = 2^72 codes: too large.
  EXPECT_DEATH(ReachabilityExplorer(4, 63), "state space");
}

}  // namespace
}  // namespace fdp
