#include "util/flags.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fdp {
namespace {

Flags make(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags(static_cast<int>(args.size()),
               const_cast<char**>(args.data()));
}

TEST(Flags, EqualsSyntax) {
  Flags f = make({"--n=32", "--rate=0.5", "--name=ring", "--deep=true"});
  EXPECT_EQ(f.get_int("n", 0), 32);
  EXPECT_DOUBLE_EQ(f.get_double("rate", 0.0), 0.5);
  EXPECT_EQ(f.get_string("name", ""), "ring");
  EXPECT_TRUE(f.get_bool("deep", false));
}

TEST(Flags, SpaceSyntax) {
  Flags f = make({"--n", "17", "--name", "star"});
  EXPECT_EQ(f.get_int("n", 0), 17);
  EXPECT_EQ(f.get_string("name", ""), "star");
}

TEST(Flags, BareBooleanFlag) {
  Flags f = make({"--verbose"});
  EXPECT_TRUE(f.get_bool("verbose", false));
}

TEST(Flags, DefaultsWhenAbsent) {
  Flags f = make({});
  EXPECT_EQ(f.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(f.get_double("x", 2.5), 2.5);
  EXPECT_EQ(f.get_string("s", "dflt"), "dflt");
  EXPECT_FALSE(f.get_bool("b", false));
}

TEST(Flags, BoolFalseSpellings) {
  Flags f = make({"--a=false", "--b=0", "--c=no"});
  EXPECT_FALSE(f.get_bool("a", true));
  EXPECT_FALSE(f.get_bool("b", true));
  EXPECT_FALSE(f.get_bool("c", true));
}

TEST(Flags, UnknownFlagMessageNamesBinaryAndKnownFlags) {
  Flags f = make({"--seedz=3"});  // typo for --seeds
  (void)f.get_int("seeds", 1);
  (void)f.get_string("csv", "");
  const std::string msg = f.unknown_flags_message();
  EXPECT_NE(msg.find("prog: unknown flag --seedz"), std::string::npos) << msg;
  EXPECT_NE(msg.find("prog knows:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("--seeds"), std::string::npos) << msg;
  EXPECT_NE(msg.find("--csv"), std::string::npos) << msg;
}

TEST(Flags, UnknownFlagMessageStripsProgramPath) {
  std::vector<const char*> args = {"/build/bench/bench_e4_fdp", "--oops=1"};
  Flags f(static_cast<int>(args.size()), const_cast<char**>(args.data()));
  (void)f.get_int("seeds", 1);
  const std::string msg = f.unknown_flags_message();
  EXPECT_NE(msg.find("bench_e4_fdp: unknown flag --oops"), std::string::npos)
      << msg;
  EXPECT_EQ(msg.find("/build/"), std::string::npos) << msg;
}

TEST(Flags, NoFlagsReadSaysSo) {
  Flags f = make({"--anything=1"});
  const std::string msg = f.unknown_flags_message();
  EXPECT_NE(msg.find("prog takes no flags"), std::string::npos) << msg;
}

TEST(Flags, CleanInvocationHasNoMessage) {
  Flags f = make({"--n=8"});
  (void)f.get_int("n", 1);
  EXPECT_TRUE(f.unknown_flags_message().empty());
}

}  // namespace
}  // namespace fdp
