// The parallel experiment driver: spec validation, deterministic
// fan-out (worker count must never change any result), per-trial trace
// attachment and the CSV dump.
#include "analysis/driver.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>

namespace fdp {
namespace {

ScenarioSpec small_departure_scenario() {
  ScenarioSpec sc;
  sc.family = ScenarioFamily::Departure;
  sc.config.n = 8;
  sc.config.topology = "gnp";
  sc.config.leave_fraction = 0.3;
  sc.config.invalid_mode_prob = 0.2;
  return sc;
}

TEST(ParallelMap, MatchesSequentialInIndexOrder) {
  auto fn = [](std::uint64_t i) { return i * i + 1; };
  const auto seq = parallel_map(64, 1, fn);
  const auto par = parallel_map(64, 8, fn);
  ASSERT_EQ(seq.size(), 64u);
  EXPECT_EQ(seq, par);
  for (std::uint64_t i = 0; i < 64; ++i) EXPECT_EQ(seq[i], i * i + 1);
}

TEST(ParallelMap, EmptyAndSingleton) {
  auto fn = [](std::uint64_t i) { return i + 7; };
  EXPECT_TRUE(parallel_map(0, 4, fn).empty());
  const auto one = parallel_map(1, 4, fn);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 7u);
}

TEST(ParallelMapWith, MatchesSequentialAndReusesState) {
  // Each worker carries a counter; the per-index result must not depend on
  // it (the determinism contract: worker state is a capacity cache only),
  // but the state must persist across the indices one worker processes.
  struct Scratch {
    std::uint64_t calls = 0;
  };
  auto fn = [](std::uint64_t i, Scratch& s) {
    ++s.calls;
    return i * 3 + 1;
  };
  const auto seq = parallel_map_with<Scratch>(64, 1, fn);
  const auto par = parallel_map_with<Scratch>(64, 8, fn);
  ASSERT_EQ(seq.size(), 64u);
  EXPECT_EQ(seq, par);
  for (std::uint64_t i = 0; i < 64; ++i) EXPECT_EQ(seq[i], i * 3 + 1);
}

TEST(ParallelMapWith, SingleWorkerSeesEveryIndex) {
  struct Scratch {
    std::vector<std::uint64_t> seen;
  };
  std::vector<std::uint64_t> order;
  auto fn = [&order](std::uint64_t i, Scratch& s) {
    s.seen.push_back(i);
    if (s.seen.size() == 16) order = s.seen;  // one worker: full history
    return i;
  };
  (void)parallel_map_with<Scratch>(16, 1, fn);
  std::vector<std::uint64_t> expect(16);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);  // one worker processes indices in order
}

TEST(Driver, ResolveWorkersNeverZero) {
  EXPECT_GE(resolve_workers(0), 1u);
  EXPECT_EQ(resolve_workers(3), 3u);
}

TEST(ExperimentSpecValidation, DefaultsWithScenarioAreRunnable) {
  ExperimentSpec spec;
  spec.scenario(small_departure_scenario());
  EXPECT_EQ(spec.validate(), "");
}

TEST(ExperimentSpecValidation, RejectsZeroMaxSteps) {
  ExperimentSpec spec;
  spec.scenario(small_departure_scenario()).max_steps(0);
  EXPECT_NE(spec.validate().find("max_steps"), std::string::npos);
}

TEST(ExperimentSpecValidation, RejectsEmptySeedRange) {
  ExperimentSpec spec;
  spec.scenario(small_departure_scenario()).seeds(1, 0);
  EXPECT_NE(spec.validate().find("seed"), std::string::npos);
}

TEST(ExperimentSpecValidation, RejectsBadKnobs) {
  EXPECT_NE(ExperimentSpec{}
                .scenario(small_departure_scenario())
                .check_every(0)
                .validate(),
            "");
  EXPECT_NE(ExperimentSpec{}
                .scenario(small_departure_scenario())
                .monitors(true, 0)
                .validate(),
            "");
  EXPECT_NE(ExperimentSpec{}
                .scenario(small_departure_scenario())
                .seed_mix(0, 5)
                .validate(),
            "");
  ScenarioSpec empty;
  empty.config.n = 0;
  EXPECT_NE(ExperimentSpec{}.scenario(empty).validate(), "");
  EXPECT_NE(ExperimentSpec{}
                .scenario(small_departure_scenario())
                .trace_pattern("trace.jsonl")  // missing {seed}
                .validate(),
            "");
}

TEST(ExperimentSpec, TrialSeedAppliesAffineMix) {
  ExperimentSpec spec;
  spec.seeds(10, 4).seed_mix(977, 3);
  EXPECT_EQ(spec.trial_seed(0), 10 * 977 + 3);
  EXPECT_EQ(spec.trial_seed(3), 13 * 977 + 3);
}

// The tentpole guarantee: aggregates over a seed sweep are identical for
// 1 worker and 8 workers — same trials, same order, same statistics,
// byte-identical CSV.
TEST(Driver, SweepIsDeterministicAcrossWorkerCounts) {
  ExperimentSpec spec;
  spec.scenario(small_departure_scenario())
      .max_steps(300'000)
      .monitors(true, 8)
      .seeds(1, 32);

  const ExperimentResult serial = ExperimentDriver(1).run(spec);
  const ExperimentResult parallel = ExperimentDriver(8).run(spec);

  ASSERT_EQ(serial.trials.size(), 32u);
  ASSERT_EQ(parallel.trials.size(), 32u);
  for (std::size_t i = 0; i < 32; ++i) {
    const TrialResult& a = serial.trials[i];
    const TrialResult& b = parallel.trials[i];
    EXPECT_EQ(a.index, b.index);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.leaving_count, b.leaving_count);
    EXPECT_EQ(a.run.reached_legitimate, b.run.reached_legitimate);
    EXPECT_EQ(a.run.steps, b.run.steps);
    EXPECT_EQ(a.run.sends, b.run.sends);
    EXPECT_EQ(a.run.exits, b.run.exits);
    EXPECT_EQ(a.run.phi_initial, b.run.phi_initial);
    EXPECT_EQ(a.run.phi_final, b.run.phi_final);
    EXPECT_EQ(a.run.failure, b.run.failure);
  }

  const Aggregate& x = serial.agg;
  const Aggregate& y = parallel.agg;
  EXPECT_EQ(x.trials, y.trials);
  EXPECT_EQ(x.solved, y.solved);
  EXPECT_EQ(x.total_exits, y.total_exits);
  EXPECT_EQ(x.expected_exits, y.expected_exits);
  EXPECT_DOUBLE_EQ(x.steps.mean(), y.steps.mean());
  EXPECT_DOUBLE_EQ(x.steps.median(), y.steps.median());
  EXPECT_DOUBLE_EQ(x.steps.percentile(0.95), y.steps.percentile(0.95));
  EXPECT_DOUBLE_EQ(x.phi_drain.mean(), y.phi_drain.mean());
  EXPECT_EQ(x.verdict(), y.verdict());

  // Byte-identical CSV regardless of worker count.
  const std::string p1 = testing::TempDir() + "fdp_trials_w1.csv";
  const std::string p8 = testing::TempDir() + "fdp_trials_w8.csv";
  ASSERT_EQ(write_trials_csv(p1, spec, serial.trials), "");
  ASSERT_EQ(write_trials_csv(p8, spec, parallel.trials), "");
  auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  };
  const std::string csv1 = slurp(p1);
  EXPECT_FALSE(csv1.empty());
  EXPECT_EQ(csv1, slurp(p8));
  std::remove(p1.c_str());
  std::remove(p8.c_str());
}

TEST(Driver, RunRefusesInvalidSpec) {
  ExperimentSpec spec;
  spec.scenario(small_departure_scenario()).max_steps(0);
  EXPECT_DEATH((void)ExperimentDriver(1).run(spec), "invalid ExperimentSpec");
}

TEST(Driver, PerTrialTracesLandInSeparateFiles) {
  ExperimentSpec spec;
  spec.scenario(small_departure_scenario())
      .max_steps(200'000)
      .seeds(1, 3)
      .trace_pattern(testing::TempDir() + "fdp_drv_{seed}.jsonl");
  const ExperimentResult res = ExperimentDriver(2).run(spec);
  EXPECT_EQ(res.agg.trace_errors, 0u);
  for (const TrialResult& t : res.trials) {
    EXPECT_EQ(t.trace_error, "");
    const std::string path =
        testing::TempDir() + "fdp_drv_" + std::to_string(t.seed) + ".jsonl";
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) ++lines;
    EXPECT_EQ(lines, t.run.steps);
    std::remove(path.c_str());
  }
}

TEST(Driver, UnwritableTracePathIsSurfacedNotFatal) {
  ExperimentSpec spec;
  spec.scenario(small_departure_scenario())
      .max_steps(100'000)
      .seeds(1, 2)
      .trace_pattern("/nonexistent-dir/fdp_{seed}.jsonl");
  const ExperimentResult res = ExperimentDriver(2).run(spec);
  EXPECT_EQ(res.agg.trace_errors, 2u);
  for (const TrialResult& t : res.trials) {
    EXPECT_NE(t.trace_error.find("cannot open"), std::string::npos)
        << t.trace_error;
    EXPECT_TRUE(t.run.reached_legitimate);  // the run itself still counts
  }
  EXPECT_NE(res.agg.verdict(), "clean");
}

TEST(Driver, AggregateSeparatesSolvedTimingsFromCounters) {
  std::vector<TrialResult> trials(3);
  trials[0].run.reached_legitimate = true;
  trials[0].run.steps = 100;
  trials[0].run.exits = 2;
  trials[1].run.reached_legitimate = true;
  trials[1].run.steps = 300;
  trials[1].run.exits = 2;
  trials[2].run.reached_legitimate = false;  // timed out: no timing sample
  trials[2].run.steps = 9999;
  trials[2].run.failure = "step budget exhausted";
  for (std::size_t i = 0; i < trials.size(); ++i) {
    trials[i].index = i;
    trials[i].leaving_count = 2;
  }
  const Aggregate a = aggregate(trials);
  EXPECT_EQ(a.trials, 3u);
  EXPECT_EQ(a.solved, 2u);
  EXPECT_EQ(a.steps.count(), 2u);
  EXPECT_DOUBLE_EQ(a.steps.mean(), 200.0);
  EXPECT_EQ(a.total_exits, 4u);
  EXPECT_EQ(a.expected_exits, 6u);
  EXPECT_FALSE(a.clean());
  EXPECT_EQ(a.first_failure, "step budget exhausted");
}

TEST(Driver, MapRunsArbitraryPerSeedWork) {
  const ExperimentDriver driver(4);
  const std::vector<std::uint64_t> out =
      driver.map(16, [](std::uint64_t i) { return i * 3; });
  std::uint64_t sum = std::accumulate(out.begin(), out.end(),
                                      std::uint64_t{0});
  EXPECT_EQ(sum, 3 * (15 * 16) / 2);
}

}  // namespace
}  // namespace fdp
