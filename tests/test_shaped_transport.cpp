// ShapedTransport: deterministic link shaping (ISSUE 10).
//
// Two layers of pinning:
//  * transport-level — each shaping feature (delay, loss, burst loss,
//    reorder, duplication, partitions) observed directly on raw frames,
//    plus the delay-queue determinism contract: same seed, same send
//    sequence => byte-identical delivery order.
//  * protocol-level — the compound-chaos grid: loss x duplication x
//    reorder applied SIMULTANEOUSLY to an E4-style churn run must reach
//    the same outcome (gone set, stayer topology) as the clean
//    MemTransport run from the same population seed. Chaos perturbs the
//    schedule; self-stabilization promises the outcome is schedule-free,
//    and the linearization overlay's legitimate topology is unique, so
//    "same outcome" is byte-comparable (the substrate-equivalence idiom).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "analysis/scenario.hpp"
#include "core/framework.hpp"
#include "net/live_scenario.hpp"
#include "net/shaped_transport.hpp"
#include "overlay/topology_checks.hpp"

namespace fdp::net {
namespace {

/// One received frame, as the RxFn saw it.
struct Rx {
  ProcessId dst;
  std::vector<std::uint8_t> bytes;
  bool operator==(const Rx&) const = default;
};

RxFn collector(std::vector<Rx>& out) {
  return [&out](ProcessId dst, const std::uint8_t* data, std::size_t len) {
    out.push_back(Rx{dst, {data, data + len}});
  };
}

/// Send `count` one-byte frames round-robin over a few links.
void send_pattern(ShapedTransport& t, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint8_t payload = static_cast<std::uint8_t>(i);
    EXPECT_TRUE(t.try_send(static_cast<ProcessId>(i % 3),
                           static_cast<ProcessId>(1 + i % 3), &payload, 1));
  }
}

TEST(ShapedTransport, ZeroLatencyStillCostsOneTick) {
  ShapedTransport t(std::make_unique<MemTransport>(), ShapeConfig{});
  t.open(4);
  const std::uint8_t b = 42;
  ASSERT_TRUE(t.try_send(0, 1, &b, 1));
  EXPECT_EQ(t.in_medium(), 1u);
  std::vector<Rx> got;
  const RxFn rx = collector(got);
  t.poll(0, rx);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].dst, 1u);
  EXPECT_EQ(got[0].bytes[0], 42u);
  EXPECT_EQ(t.in_medium(), 0u);
}

TEST(ShapedTransport, FixedLatencyDelaysDelivery) {
  ShapeConfig cfg;
  cfg.latency_ticks = 5;
  ShapedTransport t(std::make_unique<MemTransport>(), cfg);
  t.open(4);
  const std::uint8_t b = 7;
  ASSERT_TRUE(t.try_send(0, 1, &b, 1));
  std::vector<Rx> got;
  const RxFn rx = collector(got);
  for (int i = 0; i < 4; ++i) t.poll(0, rx);
  EXPECT_TRUE(got.empty()) << "delivered before the configured latency";
  t.poll(0, rx);
  ASSERT_EQ(got.size(), 1u);
}

TEST(ShapedTransport, CertainLossDestroysEverything) {
  ShapeConfig cfg;
  cfg.loss = 1.0;
  ShapedTransport t(std::make_unique<MemTransport>(), cfg);
  EXPECT_TRUE(t.lossy());
  t.open(4);
  send_pattern(t, 32);
  std::vector<Rx> got;
  const RxFn rx = collector(got);
  for (int i = 0; i < 8; ++i) t.poll(0, rx);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(t.shape_stats().dropped_loss, 32u);
  EXPECT_EQ(t.shape_stats().delivered, 0u);
}

TEST(ShapedTransport, GilbertElliottLosesInBursts) {
  ShapeConfig cfg;
  cfg.seed = 9;
  cfg.burst_to_bad = 0.2;
  cfg.burst_to_good = 0.3;
  cfg.burst_loss = 1.0;
  ShapedTransport t(std::make_unique<MemTransport>(), cfg);
  EXPECT_TRUE(t.lossy());
  t.open(4);
  send_pattern(t, 400);
  std::vector<Rx> got;
  const RxFn rx = collector(got);
  for (int i = 0; i < 16; ++i) t.poll(0, rx);
  const ShapeStats& st = t.shape_stats();
  // The chain must visit both states: some datagrams die in the bad
  // state, some survive the good one.
  EXPECT_GT(st.dropped_burst, 0u);
  EXPECT_GT(st.delivered, 0u);
  EXPECT_EQ(st.dropped_burst + st.delivered, 400u);
  EXPECT_EQ(got.size(), st.delivered);
}

TEST(ShapedTransport, DuplicationDeliversTwice) {
  ShapeConfig cfg;
  cfg.duplicate = 1.0;
  ShapedTransport t(std::make_unique<MemTransport>(), cfg);
  // Duplication alone cannot lose a frame; the medium stays non-lossy.
  EXPECT_FALSE(t.lossy());
  t.open(4);
  send_pattern(t, 10);
  std::vector<Rx> got;
  const RxFn rx = collector(got);
  for (int i = 0; i < 16; ++i) t.poll(0, rx);
  EXPECT_EQ(got.size(), 20u);
  EXPECT_EQ(t.shape_stats().duplicated, 10u);
}

TEST(ShapedTransport, PartitionSeversExactlyTheCut) {
  ShapeConfig cfg;
  cfg.partitions = true;
  ShapedTransport t(std::make_unique<MemTransport>(), cfg);
  EXPECT_TRUE(t.lossy()) << "partition capability must declare lossiness";
  t.open(4);
  t.start_partition({0, 1, 0, 0});  // actor 1 is cut off
  const std::uint8_t b = 1;
  ASSERT_TRUE(t.try_send(0, 1, &b, 1));  // crosses the cut: destroyed
  ASSERT_TRUE(t.try_send(0, 2, &b, 1));  // same side: passes
  ASSERT_TRUE(t.try_send(1, 0, &b, 1));  // crosses (bidirectional)
  std::vector<Rx> got;
  const RxFn rx = collector(got);
  for (int i = 0; i < 4; ++i) t.poll(0, rx);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].dst, 2u);
  EXPECT_EQ(t.shape_stats().dropped_partition, 2u);

  t.end_partition();
  ASSERT_TRUE(t.try_send(0, 1, &b, 1));
  for (int i = 0; i < 4; ++i) t.poll(0, rx);
  EXPECT_EQ(got.size(), 2u) << "the healed link must carry frames again";
}

TEST(ShapedTransport, PartitionSeversHeldFramesAtDeliveryTime) {
  ShapeConfig cfg;
  cfg.partitions = true;
  cfg.latency_ticks = 10;
  ShapedTransport t(std::make_unique<MemTransport>(), cfg);
  t.open(2);
  const std::uint8_t b = 1;
  ASSERT_TRUE(t.try_send(0, 1, &b, 1));  // clean at send time
  t.start_partition({0, 1});             // window opens while it is held
  std::vector<Rx> got;
  const RxFn rx = collector(got);
  for (int i = 0; i < 16; ++i) t.poll(0, rx);
  EXPECT_TRUE(got.empty()) << "the cut is a property of delivery time";
  EXPECT_EQ(t.shape_stats().dropped_partition, 1u);
}

TEST(ShapedTransport, TimedWindowClosesOnItsOwn) {
  ShapeConfig cfg;
  cfg.partitions = true;
  ShapedTransport t(std::make_unique<MemTransport>(), cfg);
  t.open(2);
  t.start_partition({0, 1}, /*until_tick=*/4);
  std::vector<Rx> got;
  const RxFn rx = collector(got);
  const std::uint8_t b = 1;
  ASSERT_TRUE(t.try_send(0, 1, &b, 1));
  t.poll(0, rx);  // tick 1: window open, frame destroyed
  EXPECT_TRUE(t.partition_open());
  for (int i = 0; i < 4; ++i) t.poll(0, rx);  // ticks 2..5: closes at 4
  EXPECT_FALSE(t.partition_open());
  ASSERT_TRUE(t.try_send(0, 1, &b, 1));
  for (int i = 0; i < 4; ++i) t.poll(0, rx);
  EXPECT_EQ(got.size(), 1u);
}

// The delay-queue determinism contract: with every shaping feature armed,
// the same seed and send sequence produce byte-identical delivery
// sequences — order included (TimerWheel fires insertion-order within a
// tick, per-link Rng streams are position-keyed, MemTransport drains
// deterministically).
TEST(ShapedTransport, DelayQueueDeterminism) {
  const auto run = [] {
    ShapeConfig cfg;
    cfg.seed = 77;
    cfg.loss = 0.1;
    cfg.latency_ticks = 3;
    cfg.jitter_ticks = 4;
    cfg.reorder = 0.25;
    cfg.reorder_ticks = 6;
    cfg.duplicate = 0.15;
    ShapedTransport t(std::make_unique<MemTransport>(), cfg);
    t.open(4);
    std::vector<Rx> got;
    const RxFn rx = collector(got);
    // Interleave sends and polls so frames queue behind different wheel
    // positions, not one burst.
    std::size_t sent = 0;
    for (int round = 0; round < 40; ++round) {
      for (int k = 0; k < 3; ++k) {
        const std::uint8_t payload = static_cast<std::uint8_t>(sent++);
        EXPECT_TRUE(t.try_send(static_cast<ProcessId>(round % 4),
                               static_cast<ProcessId>((round + 1 + k) % 4),
                               &payload, 1));
      }
      t.poll(0, rx);
    }
    for (int i = 0; i < 32; ++i) t.poll(0, rx);
    EXPECT_EQ(t.in_medium(), 0u);
    return got;
  };
  const std::vector<Rx> a = run();
  const std::vector<Rx> b = run();
  EXPECT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i], b[i]) << "delivery " << i << " diverged";
}

// --- the compound-chaos grid ---

ScenarioConfig churn_config(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.n = 16;
  cfg.topology = "gnp";
  cfg.leave_fraction = 0.25;
  cfg.invalid_mode_prob = 0.3;
  cfg.random_anchor_prob = 0.2;
  cfg.inflight_per_node = 0.5;
  cfg.seed = seed;
  return cfg;
}

struct Outcome {
  std::vector<ProcessId> gone;
  std::vector<std::vector<ProcessId>> links;
  bool converged = false;
};

Outcome read_outcome(Substrate& sub, const std::vector<bool>& leaving) {
  Outcome out;
  for (ProcessId p = 0; p < sub.size(); ++p)
    if (sub.gone(p)) out.gone.push_back(p);
  out.links.resize(sub.size());
  for (ProcessId p = 0; p < sub.size(); ++p) {
    if (leaving[p] || sub.gone(p)) continue;
    const auto& proc = dynamic_cast<const FrameworkProcess&>(sub.process(p));
    for (const RefInfo& r : proc.hosted_overlay().stored())
      if (r.ref.id() != p) out.links[p].push_back(r.ref.id());
    std::sort(out.links[p].begin(), out.links[p].end());
    out.links[p].erase(
        std::unique(out.links[p].begin(), out.links[p].end()),
        out.links[p].end());
  }
  out.converged = check_topology(sub, "linearization").converged;
  return out;
}

Outcome run_shaped(const ScenarioConfig& cfg, const ShapeConfig* shape,
                   std::uint64_t* gave_up) {
  std::unique_ptr<Transport> transport;
  if (shape == nullptr) {
    transport = std::make_unique<MemTransport>();
  } else {
    transport = std::make_unique<ShapedTransport>(
        std::make_unique<MemTransport>(), *shape);
  }
  NetConfig rcfg;
  // Tighten retransmission for a 16-actor test so lost frames come back
  // within the pump budget even at 20% loss.
  rcfg.retransmit_ticks = 8;
  LiveScenario sc = build_live_framework_scenario(
      cfg, "linearization", std::move(transport), rcfg);
  bool done = false;
  for (int pumps = 0; pumps < 120'000 && !done; ++pumps) {
    sc.net->pump(0);
    done = all_leaving_gone(*sc.net) &&
           check_topology(*sc.net, "linearization").converged;
  }
  EXPECT_TRUE(done) << "run did not converge: exits=" << sc.net->exits()
                    << "/" << sc.leaving_count
                    << " in_flight=" << sc.net->in_flight()
                    << " retransmits=" << sc.net->retransmits()
                    << " gave_up=" << sc.net->retransmit_gave_up();
  if (gave_up != nullptr) *gave_up = sc.net->retransmit_gave_up();
  return read_outcome(*sc.net, sc.leaving);
}

struct ChaosCell {
  double loss;
  double duplicate;
  double reorder;
};

class CompoundChaos : public testing::TestWithParam<ChaosCell> {};

TEST_P(CompoundChaos, ChaosDoesNotChangeTheOutcome) {
  const ChaosCell cell = GetParam();
  const ScenarioConfig cfg = churn_config(5);

  const Outcome clean = run_shaped(cfg, nullptr, nullptr);
  ASSERT_TRUE(clean.converged);

  ShapeConfig shape;
  shape.seed = 0xC4A05;
  shape.loss = cell.loss;
  shape.duplicate = cell.duplicate;
  shape.reorder = cell.reorder;
  shape.reorder_ticks = 6;
  shape.latency_ticks = 1;
  shape.jitter_ticks = 2;
  std::uint64_t gave_up = ~std::uint64_t{0};
  const Outcome chaotic = run_shaped(cfg, &shape, &gave_up);

  ASSERT_TRUE(chaotic.converged);
  EXPECT_EQ(clean.gone, chaotic.gone);
  ASSERT_EQ(clean.links.size(), chaotic.links.size());
  for (std::size_t p = 0; p < clean.links.size(); ++p)
    EXPECT_EQ(clean.links[p], chaotic.links[p]) << "stayer " << p;
  // Loss never exhausts the retransmit ceiling outside a partition —
  // the satellite assertion that keeps give-up a real alarm.
  EXPECT_EQ(gave_up, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CompoundChaos,
    testing::Values(ChaosCell{0.05, 0.0, 0.0}, ChaosCell{0.0, 0.3, 0.0},
                    ChaosCell{0.0, 0.0, 0.3}, ChaosCell{0.05, 0.3, 0.3},
                    ChaosCell{0.2, 0.2, 0.2}));

}  // namespace
}  // namespace fdp::net
