#include "core/primitives.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace fdp {
namespace {

using testsupport::ScriptedProcess;
using testsupport::spawn_scripted;

/// Build a minimal ActionRecord by hand for audit_action unit tests.
ActionRecord record(ProcessId actor) {
  ActionRecord rec;
  rec.actor = actor;
  rec.kind = ActionRecord::Kind::Timeout;
  return rec;
}

RefInfo ref(ProcessId id) { return RefInfo{Ref::make(id), ModeInfo::Staying, 0}; }

TEST(AuditAction, IntroductionKeepsCopy) {
  ActionRecord rec = record(0);
  rec.refs_before = {ref(1), ref(2)};
  rec.refs_after = {ref(1), ref(2)};
  Message m = Message::present(ref(2));
  rec.sent.emplace_back(Ref::make(1), m);
  PrimitiveCounts counts;
  std::vector<std::string> viol;
  EXPECT_TRUE(audit_action(rec, counts, viol));
  EXPECT_EQ(counts.introductions, 1u);
  EXPECT_TRUE(viol.empty());
}

TEST(AuditAction, DelegationMovesCopy) {
  ActionRecord rec = record(0);
  rec.refs_before = {ref(1), ref(2)};
  rec.refs_after = {ref(1)};  // dropped 2 from storage...
  rec.sent.emplace_back(Ref::make(1), Message::forward(ref(2)));  // ...sent it
  PrimitiveCounts counts;
  std::vector<std::string> viol;
  EXPECT_TRUE(audit_action(rec, counts, viol));
  EXPECT_EQ(counts.delegations, 1u);
}

TEST(AuditAction, ReversalSendsSelfToDroppedTarget) {
  ActionRecord rec = record(0);
  rec.refs_before = {ref(1)};
  rec.refs_after = {};
  rec.sent.emplace_back(Ref::make(1), Message::present(ref(0)));  // own ref
  PrimitiveCounts counts;
  std::vector<std::string> viol;
  EXPECT_TRUE(audit_action(rec, counts, viol));
  EXPECT_EQ(counts.reversals, 1u);
}

TEST(AuditAction, FusionDropsDuplicate) {
  ActionRecord rec = record(0);
  rec.kind = ActionRecord::Kind::Deliver;
  rec.consumed = Message::present(ref(1));  // a second copy arrives
  rec.refs_before = {ref(1)};
  rec.refs_after = {ref(1)};  // still exactly one copy: fusion
  PrimitiveCounts counts;
  std::vector<std::string> viol;
  EXPECT_TRUE(audit_action(rec, counts, viol));
  EXPECT_EQ(counts.fusions, 1u);
}

TEST(AuditAction, DetectsDestroyedReference) {
  ActionRecord rec = record(0);
  rec.refs_before = {ref(1)};
  rec.refs_after = {};  // dropped without reversal or exit
  PrimitiveCounts counts;
  std::vector<std::string> viol;
  EXPECT_FALSE(audit_action(rec, counts, viol));
  ASSERT_EQ(viol.size(), 1u);
  EXPECT_NE(viol[0].find("destroyed"), std::string::npos);
}

TEST(AuditAction, DetectsFabricatedReference) {
  ActionRecord rec = record(0);
  rec.refs_after = {ref(3)};  // appeared from nowhere
  PrimitiveCounts counts;
  std::vector<std::string> viol;
  EXPECT_FALSE(audit_action(rec, counts, viol));
  EXPECT_NE(viol[0].find("fabricated"), std::string::npos);
}

TEST(AuditAction, SelfReferencesAreFree) {
  ActionRecord rec = record(0);
  rec.kind = ActionRecord::Kind::Deliver;
  rec.consumed = Message::present(ref(0));  // own ref arrives and is dropped
  PrimitiveCounts counts;
  std::vector<std::string> viol;
  EXPECT_TRUE(audit_action(rec, counts, viol));
}

TEST(AuditAction, ExitMayDestroyReferences) {
  ActionRecord rec = record(0);
  rec.refs_before = {ref(1), ref(2)};
  rec.refs_after = {};
  rec.exited = true;
  PrimitiveCounts counts;
  std::vector<std::string> viol;
  EXPECT_TRUE(audit_action(rec, counts, viol));
}

TEST(AuditAction, MessageRefMustBeConserved) {
  ActionRecord rec = record(0);
  rec.kind = ActionRecord::Kind::Deliver;
  rec.consumed = Message::present(ref(5));
  // Neither stored nor re-sent nor reversed: violation.
  PrimitiveCounts counts;
  std::vector<std::string> viol;
  EXPECT_FALSE(audit_action(rec, counts, viol));
}

TEST(PrimitiveAuditor, FlagsViolatingProcessInAWorld) {
  World w(1);
  const auto refs = spawn_scripted(w, 2);
  auto& bad = w.process_as<ScriptedProcess>(0);
  bad.nbrs().insert({refs[1], ModeInfo::Staying, 0});
  bad.on_timeout_fn = [&](ScriptedProcess& self, Context&) {
    self.nbrs().erase(refs[1]);  // destroys the last copy: illegal
  };
  PrimitiveAuditor audit;
  w.add_observer(&audit);
  RoundRobinScheduler sched;
  for (int i = 0; i < 4; ++i) (void)w.step(sched);
  EXPECT_FALSE(audit.ok());
  EXPECT_GT(audit.actions_checked(), 0u);
}

TEST(PrimitiveAuditor, CleanProtocolPasses) {
  World w(1);
  const auto refs = spawn_scripted(w, 3);
  auto& p0 = w.process_as<ScriptedProcess>(0);
  p0.nbrs().insert({refs[1], ModeInfo::Staying, 0});
  p0.nbrs().insert({refs[2], ModeInfo::Staying, 0});
  p0.on_timeout_fn = [&](ScriptedProcess& self, Context& ctx) {
    // A legal mixture: introduce 2 to 1, self-introduce to 2.
    ctx.send(refs[1], Message::present(self.nbrs().snapshot()[1]));
    ctx.send(refs[2], Message::present(self.self_info()));
  };
  for (ProcessId p = 1; p < 3; ++p) {
    auto& proc = w.process_as<ScriptedProcess>(p);
    proc.on_message_fn = [](ScriptedProcess& self, Context&,
                            const Message& m) {
      for (const RefInfo& r : m.refs) self.nbrs().insert(r);
    };
  }
  PrimitiveAuditor audit;
  w.add_observer(&audit);
  RandomScheduler sched;
  for (int i = 0; i < 200; ++i) (void)w.step(sched);
  EXPECT_TRUE(audit.ok()) << (audit.violations().empty()
                                  ? ""
                                  : audit.violations().front());
  EXPECT_GT(audit.counts().introductions, 0u);
  audit.reset();
  EXPECT_EQ(audit.actions_checked(), 0u);
  EXPECT_TRUE(audit.ok());
}

}  // namespace
}  // namespace fdp
