#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/compact_topology.hpp"
#include "graph/connectivity.hpp"

namespace fdp {
namespace {

TEST(Generators, LineShape) {
  const DiGraph g = gen::line(4);
  EXPECT_EQ(g.edge_count(), 6u);  // 3 undirected edges, both arcs
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_TRUE(is_weakly_connected(g));
}

TEST(Generators, RingClosesTheLoop) {
  const DiGraph g = gen::ring(5);
  EXPECT_TRUE(g.has_edge(4, 0));
  EXPECT_TRUE(g.has_edge(0, 4));
  EXPECT_EQ(g.edge_count(), 10u);
  EXPECT_TRUE(is_strongly_connected(g));
}

TEST(Generators, RingOfTwoHasNoDuplicateEdge) {
  const DiGraph g = gen::ring(2);
  EXPECT_EQ(g.multiplicity(0, 1), 1u);
  EXPECT_EQ(g.multiplicity(1, 0), 1u);
}

TEST(Generators, StarHub) {
  const DiGraph g = gen::star(5);
  for (NodeId i = 1; i < 5; ++i) {
    EXPECT_TRUE(g.has_edge(0, i));
    EXPECT_TRUE(g.has_edge(i, 0));
  }
  EXPECT_FALSE(g.has_edge(1, 2));
}

TEST(Generators, CliqueComplete) {
  const DiGraph g = gen::clique(4);
  EXPECT_EQ(g.edge_count(), 12u);
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(Generators, BinaryTreeParents) {
  const DiGraph g = gen::binary_tree(7);
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_TRUE(g.has_edge(5, 2));
  EXPECT_TRUE(is_weakly_connected(g));
}

TEST(Generators, RandomTreeConnectedWithExactEdgeCount) {
  Rng rng(1);
  for (std::size_t n : {2u, 5u, 33u}) {
    const DiGraph g = gen::random_tree(n, rng);
    EXPECT_EQ(g.edge_count(), 2 * (n - 1));
    EXPECT_TRUE(is_weakly_connected(g));
  }
}

TEST(Generators, GnpConnectedAlwaysConnected) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const DiGraph g = gen::gnp_connected(20, 0.05, rng);
    EXPECT_TRUE(is_weakly_connected(g));
  }
}

TEST(Generators, RandomWeaklyConnectedIsWeaklyConnected) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const DiGraph g = gen::random_weakly_connected(16, 8, 0.3, rng);
    EXPECT_TRUE(is_weakly_connected(g));
    // But often NOT strongly connected (directed tree arcs): just verify
    // no self-loops, which the model forbids.
    for (const auto& [u, v] : g.simple_edges()) EXPECT_NE(u, v);
  }
}

TEST(Generators, ByNameDispatch) {
  Rng rng(4);
  for (const char* name :
       {"line", "ring", "star", "clique", "tree", "gnp", "wild"}) {
    const DiGraph g = gen::by_name(name, 8, rng);
    EXPECT_EQ(g.node_count(), 8u) << name;
    EXPECT_TRUE(is_weakly_connected(g)) << name;
  }
}

// The banded gnp generator must be a drop-in for the DiGraph one: same
// RNG draws consumed, same directed edges, and — because scenario builds
// draw per-edge mode knowledge while walking the edge list — the same
// lexicographic enumeration order DiGraph::simple_edges() produces.
TEST(Generators, BandedGnpMatchesDiGraphExactly) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull, 1234567ull}) {
    for (const std::size_t n : {std::size_t{2}, std::size_t{3},
                                std::size_t{17}, std::size_t{257},
                                std::size_t{2048}}) {
      const double p = 3.0 / static_cast<double>(n);
      Rng ga(seed), gb(seed);
      const DiGraph g = gen::gnp_connected(n, p, ga);
      const CompactTopology t = CompactTopology::gnp_connected(n, p, gb);
      // Identical draw consumption: the next value of both streams agrees.
      EXPECT_EQ(ga(), gb()) << "n=" << n << " seed=" << seed;
      const std::vector<Edge> want = g.simple_edges();
      std::vector<Edge> got;
      t.for_each_edge([&](NodeId u, NodeId v) { got.emplace_back(u, v); });
      EXPECT_EQ(t.simple_edge_count(), want.size());
      ASSERT_EQ(got, want) << "n=" << n << " seed=" << seed;
    }
  }
}

// p >= 1 and the degenerate sizes take the clique / tree-only paths.
TEST(Generators, BandedGnpDegenerateShapes) {
  for (const std::size_t n : {std::size_t{1}, std::size_t{2},
                              std::size_t{3}}) {
    Rng ga(9), gb(9);
    const DiGraph g = gen::gnp_connected(n, 1.0, ga);
    const CompactTopology t = CompactTopology::gnp_connected(n, 1.0, gb);
    EXPECT_EQ(ga(), gb());
    const std::vector<Edge> want = g.simple_edges();
    std::vector<Edge> got;
    t.for_each_edge([&](NodeId u, NodeId v) { got.emplace_back(u, v); });
    ASSERT_EQ(got, want) << "n=" << n;
  }
  Rng rng(11);
  const CompactTopology empty = CompactTopology::gnp_connected(5, 0.0, rng);
  std::size_t arcs = 0;
  empty.for_each_edge([&](NodeId, NodeId) { ++arcs; });
  EXPECT_EQ(arcs, 8u);  // tree of 5: 4 undirected edges, both arcs
}

TEST(GeneratorsDeath, UnknownNameAborts) {
  Rng rng(5);
  EXPECT_DEATH((void)gen::by_name("nope", 4, rng), "unknown topology");
}

}  // namespace
}  // namespace fdp
