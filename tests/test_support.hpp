// Shared helpers for the test suite: tiny processes with controllable
// behavior, and world-construction shortcuts.
#pragma once

#include <functional>
#include <vector>

#include "sim/context.hpp"
#include "sim/neighbor_set.hpp"
#include "sim/world.hpp"

namespace fdp::testsupport {

/// A process driven by std::function hooks; stores references in a
/// NeighborSet like the real protocols.
class ScriptedProcess final : public Process {
 public:
  using TimeoutFn = std::function<void(ScriptedProcess&, Context&)>;
  using MessageFn =
      std::function<void(ScriptedProcess&, Context&, const Message&)>;

  ScriptedProcess(Ref self, Mode mode, std::uint64_t key)
      : Process(self, mode, key), nbrs_(self) {}

  void on_timeout(Context& ctx) override {
    ++timeout_count;
    if (on_timeout_fn) on_timeout_fn(*this, ctx);
  }
  void on_message(Context& ctx, const Message& m) override {
    ++message_count;
    received.push_back(m);
    if (on_message_fn) on_message_fn(*this, ctx, m);
  }
  void collect_refs(std::vector<RefInfo>& out) const override {
    nbrs_.append_to(out);
  }
  [[nodiscard]] const char* protocol_name() const override {
    return "scripted";
  }

  NeighborSet& nbrs() { return nbrs_; }

  TimeoutFn on_timeout_fn;
  MessageFn on_message_fn;
  int timeout_count = 0;
  int message_count = 0;
  std::vector<Message> received;

 private:
  NeighborSet nbrs_;
};

/// Spawn `n` scripted processes (all staying, key = id) into a world.
inline std::vector<Ref> spawn_scripted(World& w, std::size_t n) {
  std::vector<Ref> refs;
  for (std::size_t i = 0; i < n; ++i)
    refs.push_back(w.spawn<ScriptedProcess>(Mode::Staying, i));
  return refs;
}

}  // namespace fdp::testsupport

#include "overlay/overlay_protocol.hpp"

namespace fdp::testsupport {

/// OverlayCtx that records sends instead of delivering them.
class CaptureOverlayCtx final : public OverlayCtx {
 public:
  CaptureOverlayCtx(Ref self, std::uint64_t key) : self_(self), key_(key) {}
  [[nodiscard]] Ref self() const override { return self_; }
  [[nodiscard]] std::uint64_t self_key() const override { return key_; }
  [[nodiscard]] RefInfo self_info() const override {
    return RefInfo{self_, ModeInfo::Staying, key_};
  }
  void send_overlay(Ref dest, std::uint32_t tag, std::vector<RefInfo> refs,
                    std::uint64_t token) override {
    sends.push_back({dest, tag, std::move(refs), token});
  }

  struct Send {
    Ref dest;
    std::uint32_t tag;
    std::vector<RefInfo> refs;
    std::uint64_t token = 0;
  };
  std::vector<Send> sends;

 private:
  Ref self_;
  std::uint64_t key_;
};

}  // namespace fdp::testsupport
