// Substrate equivalence (ISSUE 7 satellite): the same E4-style churn
// scenario, built from the same seed, run once on the deterministic
// simulator and once on the socket runtime over the in-process loopback
// transport (MemTransport, single-threaded deterministic poller), must
// end in the SAME place: identical departure counts, identical gone sets,
// and identical final stayer topology.
//
// Deliberately NOT compared: action traces. The simulator executes one
// atomic action per step chosen by a Scheduler over global state; the
// runtime executes whatever its event loop makes runnable (drain inboxes,
// then one timeout per awake actor per pump) and interleaves transport
// flushes between them. The two substrates therefore realize *different
// fair schedules* of the same protocol, and per-action traces (and any
// step-indexed series such as Φ decay) legitimately diverge. What the
// paper guarantees — and what this test pins — is schedule-independence
// of the OUTCOME: self-stabilization to the unique legitimate state. The
// linearization overlay is used precisely because its legitimate topology
// (the sorted line over staying keys) is unique, so "same outcome" is a
// byte-comparable statement.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/scenario.hpp"
#include "core/framework.hpp"
#include "net/live_scenario.hpp"
#include "overlay/topology_checks.hpp"

namespace fdp::net {
namespace {

ScenarioConfig e4_config(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.n = 16;
  cfg.topology = "gnp";
  cfg.leave_fraction = 0.25;
  cfg.invalid_mode_prob = 0.3;
  cfg.random_anchor_prob = 0.2;
  cfg.inflight_per_node = 0.5;
  cfg.seed = seed;
  return cfg;
}

struct Outcome {
  std::uint64_t exits = 0;
  std::vector<ProcessId> gone;
  /// Per staying process: sorted overlay-neighbor ids (self excluded).
  std::vector<std::vector<ProcessId>> links;
  bool converged = false;
};

Outcome read_outcome(Substrate& sub, const std::vector<bool>& leaving) {
  Outcome out;
  for (ProcessId p = 0; p < sub.size(); ++p) {
    if (sub.gone(p)) {
      ++out.exits;
      out.gone.push_back(p);
    }
  }
  out.links.resize(sub.size());
  for (ProcessId p = 0; p < sub.size(); ++p) {
    if (leaving[p] || sub.gone(p)) continue;
    // Compare the overlay's own links (the topology claim), not the full
    // collect_refs set: transient framework bookkeeping (anchor, mlist)
    // is schedule-dependent residue, the overlay store is the outcome.
    const auto& proc = dynamic_cast<const FrameworkProcess&>(sub.process(p));
    for (const RefInfo& r : proc.hosted_overlay().stored())
      if (r.ref.id() != p) out.links[p].push_back(r.ref.id());
    std::sort(out.links[p].begin(), out.links[p].end());
    out.links[p].erase(
        std::unique(out.links[p].begin(), out.links[p].end()),
        out.links[p].end());
  }
  out.converged = check_topology(sub, "linearization").converged;
  return out;
}

Outcome run_simulator(const ScenarioConfig& cfg) {
  Scenario sc = build_framework_scenario(cfg, "linearization");
  RandomScheduler sched;
  bool done = false;
  for (int block = 0; block < 2'000 && !done; ++block) {
    for (int i = 0; i < 500; ++i) (void)sc.world->step(sched);
    done = all_leaving_gone(*sc.world) &&
           check_topology(*sc.world, "linearization").converged;
  }
  EXPECT_TRUE(done) << "simulator run did not converge";
  return read_outcome(*sc.world, sc.leaving);
}

Outcome run_live(const ScenarioConfig& cfg) {
  LiveScenario sc = build_live_framework_scenario(
      cfg, "linearization", std::make_unique<MemTransport>());
  bool done = false;
  for (int pumps = 0; pumps < 40'000 && !done; ++pumps) {
    sc.net->pump(0);
    done = all_leaving_gone(*sc.net) &&
           check_topology(*sc.net, "linearization").converged;
  }
  EXPECT_TRUE(done) << "live run did not converge: exits="
                    << sc.net->exits() << "/" << sc.leaving_count
                    << " in_flight=" << sc.net->in_flight()
                    << " throttle_skips=" << sc.net->throttle_skips()
                    << " timeouts=" << sc.net->timeouts()
                    << " detail="
                    << check_topology(*sc.net, "linearization").detail;
  return read_outcome(*sc.net, sc.leaving);
}

class SubstrateEquivalence : public testing::TestWithParam<std::uint64_t> {};

TEST_P(SubstrateEquivalence, SameChurnSameOutcome) {
  const ScenarioConfig cfg = e4_config(GetParam());

  // Both substrates must have been handed the same population: equal
  // leaving sets fall out of the shared PopulationPlan draw.
  Rng plan_rng_a(cfg.seed), plan_rng_b(cfg.seed);
  const PopulationPlan plan_a = plan_population(cfg, plan_rng_a);
  const PopulationPlan plan_b = plan_population(cfg, plan_rng_b);
  ASSERT_EQ(plan_a.leaving, plan_b.leaving);
  ASSERT_EQ(plan_a.keys, plan_b.keys);

  const Outcome sim = run_simulator(cfg);
  const Outcome live = run_live(cfg);

  ASSERT_TRUE(sim.converged);
  ASSERT_TRUE(live.converged);
  EXPECT_EQ(sim.exits, live.exits);
  EXPECT_EQ(sim.gone, live.gone);
  ASSERT_EQ(sim.links.size(), live.links.size());
  for (std::size_t p = 0; p < sim.links.size(); ++p)
    EXPECT_EQ(sim.links[p], live.links[p]) << "stayer " << p;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubstrateEquivalence,
                         testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace fdp::net
