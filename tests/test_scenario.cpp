#include "analysis/scenario.hpp"

#include <gtest/gtest.h>

#include <set>

#include "analysis/monitors.hpp"
#include "core/framework.hpp"
#include "core/legitimacy.hpp"
#include "core/potential.hpp"
#include "graph/connectivity.hpp"
#include "graph/process_graph.hpp"

namespace fdp {
namespace {

TEST(Scenario, PopulationMatchesConfig) {
  ScenarioConfig cfg;
  cfg.n = 20;
  cfg.leave_fraction = 0.25;
  cfg.topology = "ring";
  cfg.seed = 1;
  const Scenario sc = build_departure_scenario(cfg);
  EXPECT_EQ(sc.world->size(), 20u);
  EXPECT_EQ(sc.leaving_count, 5u);
  std::size_t leaving = 0;
  for (ProcessId p = 0; p < 20; ++p)
    if (sc.world->mode(p) == Mode::Leaving) ++leaving;
  EXPECT_EQ(leaving, 5u);
}

TEST(Scenario, AtLeastOneStayingEvenAtFullFraction) {
  ScenarioConfig cfg;
  cfg.n = 5;
  cfg.leave_fraction = 1.0;
  cfg.topology = "line";
  const Scenario sc = build_departure_scenario(cfg);
  EXPECT_EQ(sc.leaving_count, 4u);
}

TEST(Scenario, KeysAreUniqueAndNonzero) {
  ScenarioConfig cfg;
  cfg.n = 50;
  cfg.topology = "tree";
  const Scenario sc = build_departure_scenario(cfg);
  std::set<std::uint64_t> keys;
  for (ProcessId p = 0; p < 50; ++p) {
    EXPECT_NE(sc.world->process(p).key(), 0u);
    keys.insert(sc.world->process(p).key());
  }
  EXPECT_EQ(keys.size(), 50u);
}

TEST(Scenario, InitialGraphWeaklyConnected) {
  for (const char* topo : {"line", "ring", "star", "clique", "tree", "gnp",
                           "wild"}) {
    ScenarioConfig cfg;
    cfg.n = 12;
    cfg.topology = topo;
    cfg.seed = 9;
    const Scenario sc = build_departure_scenario(cfg);
    const Snapshot s = take_snapshot(*sc.world);
    EXPECT_TRUE(is_weakly_connected(s.graph())) << topo;
  }
}

TEST(Scenario, CorruptionProducesInvalidInformation) {
  ScenarioConfig cfg;
  cfg.n = 16;
  cfg.topology = "gnp";
  cfg.leave_fraction = 0.5;
  cfg.invalid_mode_prob = 1.0;  // every stored belief flipped
  cfg.seed = 4;
  const Scenario sc = build_departure_scenario(cfg);
  EXPECT_GT(phi(*sc.world), 0u);
}

TEST(Scenario, NoCorruptionMeansValidState) {
  ScenarioConfig cfg;
  cfg.n = 16;
  cfg.topology = "gnp";
  cfg.leave_fraction = 0.5;
  cfg.seed = 4;
  const Scenario sc = build_departure_scenario(cfg);
  EXPECT_EQ(phi(*sc.world), 0u);
}

TEST(Scenario, InFlightMessagesInjected) {
  ScenarioConfig cfg;
  cfg.n = 10;
  cfg.topology = "line";
  cfg.inflight_per_node = 2.0;
  cfg.seed = 6;
  const Scenario sc = build_departure_scenario(cfg);
  EXPECT_EQ(sc.world->live_message_count(), 20u);
}

TEST(Scenario, AnchorsInjectedOnRequest) {
  ScenarioConfig cfg;
  cfg.n = 10;
  cfg.topology = "line";
  cfg.random_anchor_prob = 1.0;
  cfg.seed = 8;
  const Scenario sc = build_departure_scenario(cfg);
  std::size_t anchored = 0;
  for (ProcessId p = 0; p < 10; ++p) {
    if (sc.world->process_as<DepartureProcess>(p).anchor().has_value())
      ++anchored;
  }
  EXPECT_EQ(anchored, 10u);
}

TEST(Scenario, SameSeedSameScenario) {
  ScenarioConfig cfg;
  cfg.n = 12;
  cfg.topology = "wild";
  cfg.leave_fraction = 0.4;
  cfg.invalid_mode_prob = 0.3;
  cfg.seed = 77;
  const Scenario a = build_departure_scenario(cfg);
  const Scenario b = build_departure_scenario(cfg);
  for (ProcessId p = 0; p < 12; ++p) {
    EXPECT_EQ(a.world->mode(p), b.world->mode(p));
    EXPECT_EQ(a.world->process(p).key(), b.world->process(p).key());
  }
  EXPECT_TRUE(take_snapshot(*a.world).graph() ==
              take_snapshot(*b.world).graph());
}

TEST(Scenario, FrameworkScenarioHostsOverlay) {
  ScenarioConfig cfg;
  cfg.n = 8;
  cfg.topology = "gnp";
  cfg.seed = 2;
  const Scenario sc = build_framework_scenario(cfg, "ring");
  for (ProcessId p = 0; p < 8; ++p) {
    const auto* host = dynamic_cast<const OverlayHost*>(&sc.world->process(p));
    ASSERT_NE(host, nullptr);
    EXPECT_STREQ(host->hosted_overlay().name(), "ring");
  }
}

TEST(Scenario, BaselineScenarioUsesNidec) {
  ScenarioConfig cfg;
  cfg.n = 6;
  cfg.topology = "line";
  cfg.seed = 2;
  const Scenario sc = build_baseline_scenario(cfg);
  // A referenced process gets false; process 0 is referenced by 1 in the
  // line topology.
  EXPECT_FALSE(sc.world->oracle_value(0));
}

TEST(Scenario, TerminationPrechecks) {
  ScenarioConfig cfg;
  cfg.n = 4;
  cfg.topology = "line";
  cfg.leave_fraction = 0.5;
  cfg.seed = 5;
  const Scenario sc = build_departure_scenario(cfg);
  EXPECT_FALSE(all_leaving_gone(*sc.world));
  EXPECT_FALSE(all_leaving_inactive(*sc.world));
  for (ProcessId p = 0; p < 4; ++p) {
    if (sc.world->mode(p) == Mode::Leaving)
      sc.world->force_life(p, LifeState::Asleep);
  }
  EXPECT_FALSE(all_leaving_gone(*sc.world));
  EXPECT_TRUE(all_leaving_inactive(*sc.world));
  for (ProcessId p = 0; p < 4; ++p) {
    if (sc.world->mode(p) == Mode::Leaving)
      sc.world->force_life(p, LifeState::Gone);
  }
  EXPECT_TRUE(all_leaving_gone(*sc.world));
}

}  // namespace
}  // namespace fdp
