// Theorem 1: the constructive transformation reaches ANY weakly connected
// target from ANY weakly connected start, preserving connectivity along
// the way; clique building takes O(log n) rounds.
#include "universality/planner.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"

namespace fdp {
namespace {

TEST(Planner, LineToRing) {
  const TransformStats s =
      transform_graph(gen::line(6), gen::ring(6), /*verify=*/true);
  EXPECT_TRUE(s.success);
  EXPECT_EQ(s.connectivity_violations, 0u);
}

TEST(Planner, RingToStar) {
  const TransformStats s = transform_graph(gen::ring(7), gen::star(7), true);
  EXPECT_TRUE(s.success);
  EXPECT_EQ(s.connectivity_violations, 0u);
}

TEST(Planner, CliqueToLine) {
  const TransformStats s = transform_graph(gen::clique(6), gen::line(6), true);
  EXPECT_TRUE(s.success);
  EXPECT_EQ(s.intro_rounds, 0u);  // already a clique
}

TEST(Planner, SingleEdgeReversal) {
  // The paper's Theorem 2 example: {(u,v)} -> {(v,u)} needs Reversal.
  DiGraph start(2), target(2);
  start.add_edge(0, 1);
  target.add_edge(1, 0);
  const TransformStats s = transform_graph(start, target, true);
  EXPECT_TRUE(s.success);
  EXPECT_GE(s.counts.reversals, 1u);
}

TEST(Planner, IdentityTransform) {
  const DiGraph g = gen::ring(5);
  const TransformStats s = transform_graph(g, g, true);
  EXPECT_TRUE(s.success);
}

TEST(Planner, TwoNodeGraphs) {
  DiGraph start(2), target(2);
  start.add_edge(0, 1);
  target.add_edge(0, 1);
  target.add_edge(1, 0);
  EXPECT_TRUE(transform_graph(start, target, true).success);
  EXPECT_TRUE(transform_graph(target, start, true).success);
}

class RandomPairSweep : public testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPairSweep, ArbitraryWeaklyConnectedPairs) {
  Rng rng(GetParam() * 101);
  const std::size_t n = 4 + GetParam() % 8;
  const DiGraph start = gen::random_weakly_connected(n, n / 2, 0.4, rng);
  const DiGraph target = gen::random_weakly_connected(n, n / 2, 0.2, rng);
  const TransformStats s = transform_graph(start, target, true);
  EXPECT_TRUE(s.success) << "n=" << n;
  EXPECT_EQ(s.connectivity_violations, 0u);
  EXPECT_GT(s.total_ops(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPairSweep,
                         testing::Range<std::uint64_t>(1, 25));

TEST(Planner, CliqueRoundsLogarithmic) {
  // From a line (diameter n-1), introduction rounds to the clique should
  // grow like log2(n), certainly not linearly.
  for (std::size_t n : {8u, 16u, 32u, 64u}) {
    GraphRewriter rw(gen::line(n));
    const std::uint64_t rounds = clique_rounds(rw);
    const double bound = std::log2(static_cast<double>(n)) + 2;
    EXPECT_LE(static_cast<double>(rounds), bound) << "n=" << n;
    EXPECT_GE(rounds, 2u) << "n=" << n;
    EXPECT_EQ(rw.graph().simple_edge_count(), n * (n - 1));
  }
}

TEST(Planner, CliqueRoundsFromStarIsConstant) {
  // A star has diameter 2: two rounds suffice regardless of n.
  for (std::size_t n : {8u, 32u}) {
    GraphRewriter rw(gen::star(n));
    EXPECT_LE(clique_rounds(rw), 2u);
  }
}

TEST(PlannerDeath, DisconnectedStartAborts) {
  DiGraph start(3);
  start.add_edge(0, 1);  // node 2 isolated
  EXPECT_DEATH((void)transform_graph(start, gen::line(3)), "weakly connected");
}

TEST(PlannerDeath, MultigraphTargetAborts) {
  DiGraph target(2);
  target.add_edge(0, 1, 2);
  EXPECT_DEATH((void)transform_graph(gen::line(2), target), "simple");
}

TEST(Planner, MultigraphStartIsNormalized) {
  DiGraph start(3);
  start.add_edge(0, 1, 3);
  start.add_edge(1, 2, 2);
  const TransformStats s = transform_graph(start, gen::line(3), true);
  EXPECT_TRUE(s.success);
  EXPECT_GT(s.counts.fusions, 0u);
}

}  // namespace
}  // namespace fdp
