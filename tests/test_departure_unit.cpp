// Unit tests for the departure protocol, branch by branch against the
// paper's Algorithms 1-3.
#include "core/departure_process.hpp"

#include <gtest/gtest.h>

#include "core/oracle.hpp"
#include "sim/world.hpp"

namespace fdp {
namespace {

struct Fixture {
  World w{1};
  std::vector<Ref> refs;

  Ref spawn(Mode m, DeparturePolicy pol = DeparturePolicy::ExitWithOracle) {
    const Ref r = w.spawn<DepartureProcess>(m, refs.size(), pol);
    refs.push_back(r);
    return r;
  }
  DepartureProcess& proc(std::size_t i) {
    return w.process_as<DepartureProcess>(static_cast<ProcessId>(i));
  }
  /// Run exactly the timeout action of process i.
  void timeout(std::size_t i) {
    struct One : Scheduler {
      ProcessId p;
      bool fired = false;
      ActionChoice next(const KernelView&, Rng&) override {
        if (fired) return ActionChoice::none();
        fired = true;
        return ActionChoice::timeout(p);
      }
    } s;
    s.p = static_cast<ProcessId>(i);
    ASSERT_TRUE(w.step(s));
  }
  /// Deliver one specific message (by seq) to process i.
  void deliver(std::size_t i, std::uint64_t seq) {
    struct One : Scheduler {
      ProcessId p;
      std::uint64_t seq;
      bool fired = false;
      ActionChoice next(const KernelView&, Rng&) override {
        if (fired) return ActionChoice::none();
        fired = true;
        return ActionChoice::deliver(p, seq);
      }
    } s;
    s.p = static_cast<ProcessId>(i);
    s.seq = seq;
    ASSERT_TRUE(w.step(s));
  }
  /// Deliver the single message in i's channel.
  void deliver_one(std::size_t i) {
    ASSERT_EQ(w.channel(static_cast<ProcessId>(i)).size(), 1u);
    deliver(i, w.channel(static_cast<ProcessId>(i)).peek(0).seq);
  }
  RefInfo info(std::size_t i, ModeInfo m) { return RefInfo{refs[i], m, i}; }
};

// --- Algorithm 1 (timeout) ---

TEST(DepartureTimeout, StayingSelfIntroducesToStayingNeighbors) {
  Fixture f;
  f.spawn(Mode::Staying);
  f.spawn(Mode::Staying);
  f.proc(0).nbrs_mut().insert(f.info(1, ModeInfo::Staying));
  f.timeout(0);
  // Line 22: present(u) sent to v; reference kept (line 19-22, staying).
  EXPECT_TRUE(f.proc(0).nbrs().contains(f.refs[1]));
  ASSERT_EQ(f.w.channel(1).size(), 1u);
  const Message& m = f.w.channel(1).peek(0);
  EXPECT_EQ(m.verb(), Verb::Present);
  ASSERT_EQ(m.refs.size(), 1u);
  EXPECT_EQ(m.refs[0].ref, f.refs[0]);
  EXPECT_EQ(m.refs[0].mode, ModeInfo::Staying);  // info about self is valid
}

TEST(DepartureTimeout, StayingExpelsLeavingNeighborWithReversal) {
  Fixture f;
  f.spawn(Mode::Staying);
  f.spawn(Mode::Leaving);
  f.proc(0).nbrs_mut().insert(f.info(1, ModeInfo::Leaving));
  f.timeout(0);
  // Lines 20-22: dropped from N, own reference sent to it.
  EXPECT_FALSE(f.proc(0).nbrs().contains(f.refs[1]));
  ASSERT_EQ(f.w.channel(1).size(), 1u);
  EXPECT_EQ(f.w.channel(1).peek(0).refs[0].ref, f.refs[0]);
}

TEST(DepartureTimeout, StayingClearsAnchorToSelfChannel) {
  Fixture f;
  f.spawn(Mode::Staying);
  f.spawn(Mode::Staying);
  f.proc(0).set_anchor(f.info(1, ModeInfo::Staying));
  f.timeout(0);
  // Lines 16-18: anchor moved into own channel as a present message.
  EXPECT_FALSE(f.proc(0).anchor().has_value());
  ASSERT_EQ(f.w.channel(0).size(), 1u);
  EXPECT_EQ(f.w.channel(0).peek(0).verb(), Verb::Present);
  EXPECT_EQ(f.w.channel(0).peek(0).refs[0].ref, f.refs[1]);
}

TEST(DepartureTimeout, LeavingAnchorBelievedLeavingIsDistrusted) {
  Fixture f;
  f.spawn(Mode::Leaving);
  f.spawn(Mode::Leaving);
  f.proc(0).set_anchor(f.info(1, ModeInfo::Leaving));
  f.w.set_oracle(make_always_oracle(false));
  f.timeout(0);
  // Lines 1-3: anchor cleared, present(anchor) to self.
  EXPECT_FALSE(f.proc(0).anchor().has_value());
  ASSERT_EQ(f.w.channel(0).size(), 1u);
  EXPECT_EQ(f.w.channel(0).peek(0).refs[0].ref, f.refs[1]);
}

TEST(DepartureTimeout, LeavingFlushesNeighborhoodToSelf) {
  Fixture f;
  f.spawn(Mode::Leaving);
  f.spawn(Mode::Staying);
  f.spawn(Mode::Staying);
  f.proc(0).nbrs_mut().insert(f.info(1, ModeInfo::Staying));
  f.proc(0).nbrs_mut().insert(f.info(2, ModeInfo::Staying));
  f.w.set_oracle(make_always_oracle(false));
  f.timeout(0);
  // Lines 11-14: N emptied, two forward messages to self.
  EXPECT_TRUE(f.proc(0).nbrs().empty());
  EXPECT_EQ(f.w.channel(0).size(), 2u);
  EXPECT_EQ(f.w.channel(0).peek(0).verb(), Verb::Forward);
}

TEST(DepartureTimeout, LeavingExitsWhenOracleTrue) {
  Fixture f;
  f.spawn(Mode::Leaving);
  f.w.set_oracle(make_single_oracle());
  f.timeout(0);
  EXPECT_EQ(f.w.life(0), LifeState::Gone);
}

TEST(DepartureTimeout, LeavingDoesNotExitWhenOracleFalse) {
  Fixture f;
  f.spawn(Mode::Leaving);
  f.w.set_oracle(make_always_oracle(false));
  f.timeout(0);
  EXPECT_EQ(f.w.life(0), LifeState::Awake);
}

TEST(DepartureTimeout, LeavingVerifiesAnchorWhenBlocked) {
  Fixture f;
  f.spawn(Mode::Leaving);
  f.spawn(Mode::Staying);
  f.proc(0).set_anchor(f.info(1, ModeInfo::Staying));
  f.w.set_oracle(make_always_oracle(false));
  f.timeout(0);
  // Lines 9-10: present(self) to anchor; anchor kept.
  EXPECT_TRUE(f.proc(0).anchor().has_value());
  ASSERT_EQ(f.w.channel(1).size(), 1u);
  EXPECT_EQ(f.w.channel(1).peek(0).refs[0].ref, f.refs[0]);
  EXPECT_EQ(f.w.channel(1).peek(0).refs[0].mode, ModeInfo::Leaving);
}

// --- Algorithm 2 (present) ---

TEST(DeparturePresent, StayingStoresStayingRef) {
  Fixture f;
  f.spawn(Mode::Staying);
  f.spawn(Mode::Staying);
  f.spawn(Mode::Staying);
  f.w.post(f.refs[0], Message::present(f.info(2, ModeInfo::Staying)));
  f.deliver_one(0);
  EXPECT_TRUE(f.proc(0).nbrs().contains(f.refs[2]));  // line 17
}

TEST(DeparturePresent, StayingBouncesLeavingRef) {
  Fixture f;
  f.spawn(Mode::Staying);
  f.spawn(Mode::Leaving);
  f.proc(0).nbrs_mut().insert(f.info(1, ModeInfo::Staying));  // stale
  f.w.post(f.refs[0], Message::present(f.info(1, ModeInfo::Leaving)));
  f.deliver_one(0);
  // Lines 7-9: removed from N, forward(self) sent to the leaver.
  EXPECT_FALSE(f.proc(0).nbrs().contains(f.refs[1]));
  ASSERT_EQ(f.w.channel(1).size(), 1u);
  EXPECT_EQ(f.w.channel(1).peek(0).verb(), Verb::Forward);
  EXPECT_EQ(f.w.channel(1).peek(0).refs[0].ref, f.refs[0]);
}

TEST(DeparturePresent, LeavingRecruitsAnchor) {
  Fixture f;
  f.spawn(Mode::Leaving);
  f.spawn(Mode::Staying);
  f.w.post(f.refs[0], Message::present(f.info(1, ModeInfo::Staying)));
  f.deliver_one(0);
  // Line 15.
  ASSERT_TRUE(f.proc(0).anchor().has_value());
  EXPECT_EQ(f.proc(0).anchor()->ref, f.refs[1]);
}

TEST(DeparturePresent, AnchoredLeavingReversesExtraStayingRef) {
  Fixture f;
  f.spawn(Mode::Leaving);
  f.spawn(Mode::Staying);
  f.spawn(Mode::Staying);
  f.proc(0).set_anchor(f.info(1, ModeInfo::Staying));
  f.w.post(f.refs[0], Message::present(f.info(2, ModeInfo::Staying)));
  f.deliver_one(0);
  // Lines 12-13: forward(self) to the presented process.
  ASSERT_EQ(f.w.channel(2).size(), 1u);
  EXPECT_EQ(f.w.channel(2).peek(0).refs[0].ref, f.refs[0]);
  EXPECT_EQ(f.proc(0).anchor()->ref, f.refs[1]);  // anchor unchanged
}

TEST(DeparturePresent, LeavingAnchorReferenceClearsAnchor) {
  Fixture f;
  f.spawn(Mode::Leaving);
  f.spawn(Mode::Leaving);
  f.proc(0).set_anchor(f.info(1, ModeInfo::Staying));  // invalid belief
  f.w.post(f.refs[0], Message::present(f.info(1, ModeInfo::Leaving)));
  f.deliver_one(0);
  // Lines 1-2 fire, then lines 4-5 bounce our own reference to it.
  EXPECT_FALSE(f.proc(0).anchor().has_value());
  ASSERT_EQ(f.w.channel(1).size(), 1u);
  EXPECT_EQ(f.w.channel(1).peek(0).refs[0].ref, f.refs[0]);
}

TEST(DeparturePresent, OwnReferenceIsDropped) {
  Fixture f;
  f.spawn(Mode::Staying);
  f.w.post(f.refs[0], Message::present(f.info(0, ModeInfo::Staying)));
  f.deliver_one(0);
  EXPECT_TRUE(f.proc(0).nbrs().empty());
  EXPECT_EQ(f.w.sends(), 0u);
}

// --- Algorithm 3 (forward) ---

TEST(DepartureForward, StayingStoresStayingRef) {
  Fixture f;
  f.spawn(Mode::Staying);
  f.spawn(Mode::Staying);
  f.w.post(f.refs[0], Message::forward(f.info(1, ModeInfo::Staying)));
  f.deliver_one(0);
  EXPECT_TRUE(f.proc(0).nbrs().contains(f.refs[1]));  // lines 19-20
}

TEST(DepartureForward, AnchoredLeavingDelegatesToAnchor) {
  Fixture f;
  f.spawn(Mode::Leaving);
  f.spawn(Mode::Staying);
  f.spawn(Mode::Staying);
  f.proc(0).set_anchor(f.info(1, ModeInfo::Staying));
  f.w.post(f.refs[0], Message::forward(f.info(2, ModeInfo::Staying)));
  f.deliver_one(0);
  // Lines 15-16: the reference travels to the anchor.
  ASSERT_EQ(f.w.channel(1).size(), 1u);
  EXPECT_EQ(f.w.channel(1).peek(0).verb(), Verb::Forward);
  EXPECT_EQ(f.w.channel(1).peek(0).refs[0].ref, f.refs[2]);
}

TEST(DepartureForward, UnanchoredLeavingAdoptsAnchor) {
  Fixture f;
  f.spawn(Mode::Leaving);
  f.spawn(Mode::Staying);
  f.w.post(f.refs[0], Message::forward(f.info(1, ModeInfo::Staying)));
  f.deliver_one(0);
  ASSERT_TRUE(f.proc(0).anchor().has_value());  // line 18
  EXPECT_EQ(f.proc(0).anchor()->ref, f.refs[1]);
}

TEST(DepartureForward, LeavingRefDelegatedToAnchorWithoutCopy) {
  Fixture f;
  f.spawn(Mode::Leaving);
  f.spawn(Mode::Staying);
  f.spawn(Mode::Leaving);
  f.proc(0).set_anchor(f.info(1, ModeInfo::Staying));
  f.w.post(f.refs[0], Message::forward(f.info(2, ModeInfo::Leaving)));
  f.deliver_one(0);
  // Lines 7-8: invalid/valid leaving info travels on, no copy kept (the
  // Lemma 3 observation).
  ASSERT_EQ(f.w.channel(1).size(), 1u);
  EXPECT_EQ(f.w.channel(1).peek(0).refs[0].ref, f.refs[2]);
  EXPECT_EQ(f.w.channel(1).peek(0).refs[0].mode, ModeInfo::Leaving);
  EXPECT_TRUE(f.proc(0).nbrs().empty());
}

TEST(DepartureForward, StayingExpelsLeavingRefWithReversal) {
  Fixture f;
  f.spawn(Mode::Staying);
  f.spawn(Mode::Leaving);
  f.proc(0).nbrs_mut().insert(f.info(1, ModeInfo::Staying));
  f.w.post(f.refs[0], Message::forward(f.info(1, ModeInfo::Leaving)));
  f.deliver_one(0);
  EXPECT_FALSE(f.proc(0).nbrs().contains(f.refs[1]));  // lines 10-12
  ASSERT_EQ(f.w.channel(1).size(), 1u);
  EXPECT_EQ(f.w.channel(1).peek(0).refs[0].ref, f.refs[0]);
}

TEST(DepartureForward, UnanchoredLeavingBouncesLeavingRef) {
  Fixture f;
  f.spawn(Mode::Leaving);
  f.spawn(Mode::Leaving);
  f.w.post(f.refs[0], Message::forward(f.info(1, ModeInfo::Leaving)));
  f.deliver_one(0);
  // Lines 5-6.
  ASSERT_EQ(f.w.channel(1).size(), 1u);
  EXPECT_EQ(f.w.channel(1).peek(0).refs[0].ref, f.refs[0]);
}

// --- FSP policy ---

TEST(DepartureFsp, LeavingSleepsInsteadOfExiting) {
  Fixture f;
  f.spawn(Mode::Leaving, DeparturePolicy::Sleep);
  f.timeout(0);
  EXPECT_EQ(f.w.life(0), LifeState::Asleep);
  EXPECT_EQ(f.w.exits(), 0u);
}

TEST(DepartureFsp, SleeperWakesAndProcessesMessage) {
  Fixture f;
  f.spawn(Mode::Leaving, DeparturePolicy::Sleep);
  f.spawn(Mode::Staying, DeparturePolicy::Sleep);
  f.timeout(0);
  ASSERT_EQ(f.w.life(0), LifeState::Asleep);
  f.w.post(f.refs[0], Message::forward(f.info(1, ModeInfo::Staying)));
  f.deliver_one(0);
  EXPECT_EQ(f.w.life(0), LifeState::Awake);
  EXPECT_TRUE(f.proc(0).anchor().has_value());
}

TEST(DepartureCollectRefs, ReportsNeighborsAndAnchor) {
  Fixture f;
  f.spawn(Mode::Leaving);
  f.spawn(Mode::Staying);
  f.spawn(Mode::Staying);
  f.proc(0).nbrs_mut().insert(f.info(1, ModeInfo::Staying));
  f.proc(0).set_anchor(f.info(2, ModeInfo::Staying));
  std::vector<RefInfo> out;
  f.proc(0).collect_refs(out);
  EXPECT_EQ(out.size(), 2u);
}

TEST(DepartureSetAnchor, RefusesSelf) {
  Fixture f;
  f.spawn(Mode::Leaving);
  f.proc(0).set_anchor(f.info(0, ModeInfo::Staying));
  EXPECT_FALSE(f.proc(0).anchor().has_value());
}

}  // namespace
}  // namespace fdp
