// Unit tests for the Section-4 framework machinery: preprocess / verify /
// process / postprocess, mlist aging and the leaving-node behavior.
#include "core/framework.hpp"

#include <gtest/gtest.h>

#include "core/oracle.hpp"
#include "overlay/topology_checks.hpp"
#include "sim/world.hpp"

namespace fdp {
namespace {

struct Fixture {
  World w{1};
  std::vector<Ref> refs;
  std::vector<std::uint64_t> keys;

  Ref spawn(Mode m, std::uint64_t key, const char* overlay = "linearization",
            DeparturePolicy pol = DeparturePolicy::ExitWithOracle,
            FrameworkConfig cfg = {}) {
    const Ref r = w.spawn<FrameworkProcess>(m, key, make_overlay(overlay),
                                            pol, cfg);
    refs.push_back(r);
    keys.push_back(key);
    return r;
  }
  FrameworkProcess& proc(std::size_t i) {
    return w.process_as<FrameworkProcess>(static_cast<ProcessId>(i));
  }
  void timeout(std::size_t i) {
    struct One : Scheduler {
      ProcessId p;
      bool fired = false;
      ActionChoice next(const KernelView&, Rng&) override {
        if (fired) return ActionChoice::none();
        fired = true;
        return ActionChoice::timeout(p);
      }
    } s;
    s.p = static_cast<ProcessId>(i);
    ASSERT_TRUE(w.step(s));
  }
  /// Deliver all currently queued messages (repeatedly) and run timeouts,
  /// round-robin, for `steps` actions.
  void run(int steps) {
    RoundRobinScheduler sched;
    for (int i = 0; i < steps; ++i) (void)w.step(sched);
  }
  RefInfo info(std::size_t i, ModeInfo m) {
    return RefInfo{refs[i], m, keys[i]};
  }
};

TEST(Framework, OverlaySendIsParkedAndVerified) {
  Fixture f;
  f.spawn(Mode::Staying, 10);
  f.spawn(Mode::Staying, 20);
  f.spawn(Mode::Staying, 30);
  // Give 0 two neighbors; its linearization timeout will delegate the
  // farther right (30) to the nearer right (20) — through preprocess.
  f.proc(0).overlay_mut().integrate(f.info(1, ModeInfo::Staying));
  f.proc(0).overlay_mut().integrate(f.info(2, ModeInfo::Staying));
  f.timeout(0);
  EXPECT_EQ(f.proc(0).mlist_size(), 1u);
  EXPECT_GT(f.proc(0).stats().verifies_sent, 0u);
  // The delegated reference is out of overlay storage but inside mlist —
  // still reported by collect_refs (conservation).
  std::vector<RefInfo> out;
  f.proc(0).collect_refs(out);
  bool holds_30 = false;
  for (const RefInfo& r : out)
    if (r.ref == f.refs[2]) holds_30 = true;
  EXPECT_TRUE(holds_30);
}

TEST(Framework, VerifiedStayingMessageIsDispatched) {
  Fixture f;
  f.spawn(Mode::Staying, 10);
  f.spawn(Mode::Staying, 20);
  f.spawn(Mode::Staying, 30);
  f.proc(0).overlay_mut().integrate(f.info(1, ModeInfo::Staying));
  f.proc(0).overlay_mut().integrate(f.info(2, ModeInfo::Staying));
  f.run(400);
  EXPECT_GT(f.proc(0).stats().dispatched, 0u);
  // Eventually 20 learns about 30 (the delegated reference arrived).
  bool knows = false;
  for (const RefInfo& r : f.proc(1).hosted_overlay().stored())
    if (r.ref == f.refs[2]) knows = true;
  EXPECT_TRUE(knows);
}

TEST(Framework, LeavingParamDivertsToPostprocess) {
  Fixture f;
  f.spawn(Mode::Staying, 10);
  f.spawn(Mode::Staying, 20);
  f.spawn(Mode::Leaving, 30);  // the delegated ref target is leaving
  f.proc(0).overlay_mut().integrate(f.info(1, ModeInfo::Staying));
  f.proc(0).overlay_mut().integrate(f.info(2, ModeInfo::Staying));
  f.w.set_oracle(make_always_oracle(false));  // keep 2 alive to answer
  f.run(600);
  EXPECT_GT(f.proc(0).stats().postprocessed, 0u);
  // The leaving reference must not live in 0's overlay storage anymore.
  for (const RefInfo& r : f.proc(0).hosted_overlay().stored())
    EXPECT_NE(r.ref, f.refs[2]);
}

TEST(Framework, VerifyGetsProcessReply) {
  Fixture f;
  f.spawn(Mode::Staying, 10);
  f.spawn(Mode::Leaving, 20);
  f.w.set_oracle(make_always_oracle(false));
  // Direct verify: 1 must answer with its true (leaving) mode.
  f.w.post(f.refs[1], Message{Verb::Verify, 0, 0, {f.proc(0).self_info()}});
  f.run(40);
  EXPECT_GT(f.proc(1).stats().replies_sent, 0u);
}

TEST(Framework, GiveUpAgesOutUnansweredEntries) {
  FrameworkConfig cfg;
  cfg.resend_every = 2;
  cfg.give_up_age = 6;
  Fixture f;
  f.spawn(Mode::Staying, 10, "linearization",
          DeparturePolicy::ExitWithOracle, cfg);
  f.spawn(Mode::Staying, 20);
  f.spawn(Mode::Staying, 30);
  f.proc(0).overlay_mut().integrate(f.info(1, ModeInfo::Staying));
  f.proc(0).overlay_mut().integrate(f.info(2, ModeInfo::Staying));
  // Kill both targets so no verify is ever answered (they exit without
  // the protocol noticing — an extreme crash model the give-up covers).
  f.w.force_life(1, LifeState::Gone);
  f.w.force_life(2, LifeState::Gone);
  for (int i = 0; i < 12; ++i) f.timeout(0);
  EXPECT_EQ(f.proc(0).mlist_size(), 0u);
  EXPECT_GT(f.proc(0).stats().gave_up, 0u);
  EXPECT_GT(f.proc(0).stats().postprocessed, 0u);
}

TEST(Framework, LeavingNodeFlushesOverlayAndMlist) {
  Fixture f;
  f.spawn(Mode::Leaving, 10);
  f.spawn(Mode::Staying, 20);
  f.spawn(Mode::Staying, 30);
  f.proc(0).overlay_mut().integrate(f.info(1, ModeInfo::Staying));
  f.proc(0).overlay_mut().integrate(f.info(2, ModeInfo::Staying));
  f.w.set_oracle(make_always_oracle(false));
  f.timeout(0);
  EXPECT_TRUE(f.proc(0).hosted_overlay().empty());
  EXPECT_EQ(f.proc(0).mlist_size(), 0u);
  // Both references forwarded to self.
  EXPECT_EQ(f.w.channel(0).size(), 2u);
}

TEST(Framework, LeavingNodeAnswersOverlayMessageWithPresents) {
  Fixture f;
  f.spawn(Mode::Leaving, 10);
  f.spawn(Mode::Staying, 20);
  f.spawn(Mode::Staying, 30);
  f.w.set_oracle(make_always_oracle(false));
  Message m{Verb::Overlay, kTagDeliverRef, 0,
            {f.info(1, ModeInfo::Staying), f.info(2, ModeInfo::Staying)}};
  f.w.post(f.refs[0], m);
  // Deliver it.
  RoundRobinScheduler sched;
  (void)f.w.step(sched);  // slot 0: deliver
  // The leaving node does not integrate; it presents itself to 1 and 2.
  EXPECT_TRUE(f.proc(0).hosted_overlay().empty());
  ASSERT_EQ(f.w.channel(1).size(), 1u);
  ASSERT_EQ(f.w.channel(2).size(), 1u);
  EXPECT_EQ(f.w.channel(1).peek(0).verb(), Verb::Present);
  EXPECT_EQ(f.w.channel(1).peek(0).refs[0].ref, f.refs[0]);
  EXPECT_EQ(f.w.channel(1).peek(0).refs[0].mode, ModeInfo::Leaving);
}

TEST(Framework, StoreRefGoesToOverlayNotN) {
  Fixture f;
  f.spawn(Mode::Staying, 10);
  f.spawn(Mode::Staying, 20);
  f.w.post(f.refs[0], Message::present(f.info(1, ModeInfo::Staying)));
  RoundRobinScheduler sched;
  (void)f.w.step(sched);
  EXPECT_TRUE(f.proc(0).nbrs().empty());
  EXPECT_EQ(f.proc(0).hosted_overlay().stored().size(), 1u);
}

TEST(Framework, StayingPurgesLeavingOverlayNeighbor) {
  Fixture f;
  f.spawn(Mode::Staying, 10);
  f.spawn(Mode::Leaving, 20);
  f.proc(0).overlay_mut().integrate(f.info(1, ModeInfo::Leaving));
  f.timeout(0);
  EXPECT_TRUE(f.proc(0).hosted_overlay().empty());
  // Reversal: present(self) went to the leaver.
  ASSERT_GE(f.w.channel(1).size(), 1u);
}

TEST(Framework, ProcessReplyUpdatesKnowledgeAndCompletes) {
  Fixture f;
  f.spawn(Mode::Staying, 10);
  f.spawn(Mode::Staying, 20);
  f.spawn(Mode::Staying, 30);
  f.proc(0).overlay_mut().integrate(f.info(1, ModeInfo::Staying));
  f.proc(0).overlay_mut().integrate(f.info(2, ModeInfo::Staying));
  f.timeout(0);  // parks the delegation, sends verifies
  ASSERT_EQ(f.proc(0).mlist_size(), 1u);
  // Hand-deliver process replies from 1 and 2.
  f.w.post(f.refs[0],
           Message{Verb::ProcessReply, 0, 0, {f.proc(1).self_info()}});
  f.w.post(f.refs[0],
           Message{Verb::ProcessReply, 0, 0, {f.proc(2).self_info()}});
  RoundRobinScheduler sched;
  for (int i = 0; i < 8; ++i) (void)f.w.step(sched);
  EXPECT_EQ(f.proc(0).mlist_size(), 0u);
  EXPECT_EQ(f.proc(0).stats().dispatched, 1u);
}

TEST(Framework, WholeWorldDepartures) {
  // End-to-end smoke here (the full grids live in
  // test_overlay_departures.cpp): framework + linearization + FDP.
  Fixture f;
  f.spawn(Mode::Staying, 10);
  f.spawn(Mode::Leaving, 20);
  f.spawn(Mode::Staying, 30);
  f.spawn(Mode::Leaving, 40);
  f.spawn(Mode::Staying, 50);
  for (int i = 0; i + 1 < 5; ++i) {
    f.proc(static_cast<std::size_t>(i))
        .overlay_mut()
        .integrate(f.info(static_cast<std::size_t>(i + 1),
                          ModeInfo::Staying));
  }
  f.w.set_oracle(make_single_oracle());
  RandomScheduler sched;
  for (int i = 0; i < 60'000 && f.w.exits() < 2; ++i) (void)f.w.step(sched);
  EXPECT_EQ(f.w.exits(), 2u);
  EXPECT_EQ(f.w.life(1), LifeState::Gone);
  EXPECT_EQ(f.w.life(3), LifeState::Gone);
}

}  // namespace
}  // namespace fdp
