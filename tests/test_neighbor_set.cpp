#include "sim/neighbor_set.hpp"

#include <gtest/gtest.h>

namespace fdp {
namespace {

const Ref kOwner = Ref::make(0);
const Ref kA = Ref::make(1);
const Ref kB = Ref::make(2);

TEST(NeighborSet, InsertAddsNewReference) {
  NeighborSet n(kOwner);
  EXPECT_EQ(n.insert({kA, ModeInfo::Staying, 5}),
            NeighborSet::InsertResult::Added);
  EXPECT_TRUE(n.contains(kA));
  EXPECT_EQ(n.mode_of(kA), ModeInfo::Staying);
  EXPECT_EQ(n.key_of(kA), 5u);
}

TEST(NeighborSet, DuplicateInsertIsFusion) {
  NeighborSet n(kOwner);
  (void)n.insert({kA, ModeInfo::Staying, 5});
  EXPECT_EQ(n.insert({kA, ModeInfo::Leaving, 5}),
            NeighborSet::InsertResult::Fused);
  EXPECT_EQ(n.size(), 1u);
  // Incoming knowledge overwrites (fresher observation).
  EXPECT_EQ(n.mode_of(kA), ModeInfo::Leaving);
}

TEST(NeighborSet, SelfReferenceIsDropped) {
  NeighborSet n(kOwner);
  EXPECT_EQ(n.insert({kOwner, ModeInfo::Staying, 0}),
            NeighborSet::InsertResult::SelfDrop);
  EXPECT_TRUE(n.empty());
}

TEST(NeighborSet, EraseRemoves) {
  NeighborSet n(kOwner);
  (void)n.insert({kA, ModeInfo::Staying, 0});
  EXPECT_TRUE(n.erase(kA));
  EXPECT_FALSE(n.erase(kA));
  EXPECT_TRUE(n.empty());
}

TEST(NeighborSet, SnapshotIsDeterministicallyOrdered) {
  NeighborSet n(kOwner);
  (void)n.insert({kB, ModeInfo::Staying, 2});
  (void)n.insert({kA, ModeInfo::Leaving, 1});
  const auto snap = n.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].ref, kA);
  EXPECT_EQ(snap[1].ref, kB);
}

TEST(NeighborSet, SetModeUpdatesKnowledge) {
  NeighborSet n(kOwner);
  (void)n.insert({kA, ModeInfo::Unknown, 0});
  n.set_mode(kA, ModeInfo::Staying);
  EXPECT_EQ(n.mode_of(kA), ModeInfo::Staying);
}

TEST(NeighborSetDeath, ModeOfAbsentAborts) {
  NeighborSet n(kOwner);
  EXPECT_DEATH((void)n.mode_of(kA), "absent");
}

}  // namespace
}  // namespace fdp
