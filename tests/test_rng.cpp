#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

namespace fdp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LE(same, 1);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(123);
  std::map<std::uint64_t, int> counts;
  const int trials = 60000;
  for (int i = 0; i < trials; ++i) ++counts[rng.below(6)];
  for (const auto& [v, c] : counts) {
    (void)v;
    EXPECT_NEAR(c, trials / 6, trials / 60);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(19);
  std::vector<int> v(32);
  for (int i = 0; i < 32; ++i) v[static_cast<std::size_t>(i)] = i;
  const std::vector<int> orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);  // probability 1/32! of spurious failure
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (parent() == child()) ++same;
  EXPECT_LE(same, 1);
}

TEST(Rng, SplitmixDistinctOutputs) {
  std::uint64_t s = 0;
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(splitmix64(s));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Rng, PickReturnsContainedElement) {
  Rng rng(29);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 50; ++i) {
    const int x = rng.pick(v);
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
}

}  // namespace
}  // namespace fdp
