// Property-style sweeps over random corrupted states (TEST_P over seeds):
// safety, Φ monotonicity and the reference-conservation audit must hold on
// EVERY action of EVERY run, not just on the happy path.
#include <gtest/gtest.h>

#include "analysis/experiment.hpp"
#include "analysis/monitors.hpp"
#include "core/oracle.hpp"
#include "core/primitives.hpp"

namespace fdp {
namespace {

class FdpPropertySweep : public testing::TestWithParam<std::uint64_t> {};

TEST_P(FdpPropertySweep, InvariantsHoldOnEveryAction) {
  ScenarioConfig cfg;
  cfg.n = 10;
  cfg.topology = (GetParam() % 2 == 0) ? "wild" : "gnp";
  cfg.leave_fraction = 0.2 + 0.1 * static_cast<double>(GetParam() % 5);
  cfg.invalid_mode_prob = 0.1 * static_cast<double>(GetParam() % 8);
  cfg.random_anchor_prob = 0.5;
  cfg.inflight_per_node = 1.5;
  cfg.seed = GetParam();

  Scenario sc = build_departure_scenario(cfg);
  ExperimentSpec opt;
  opt.max_steps(300'000);
  opt.monitors(true, 1);
  opt.scheduler(SchedulerSpec::of(
      GetParam() % 3 == 0 ? SchedulerKind::Adversarial
                          : SchedulerKind::Random));
  const RunResult r = run_to_legitimacy(sc, opt);
  EXPECT_TRUE(r.reached_legitimate) << r.failure;
  EXPECT_TRUE(r.safety_ok) << r.failure;
  EXPECT_TRUE(r.phi_monotone) << r.failure;
  EXPECT_TRUE(r.audit_ok) << r.failure;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FdpPropertySweep, testing::Range<std::uint64_t>(1, 21));

TEST(FdpProperty, UnsafeOracleCanDisconnect) {
  // Ablation sanity check: with ALWAYS(true), a leaving cut vertex may
  // exit prematurely and disconnect the stayers — the monitors must be
  // able to see that (i.e. our instruments detect real violations).
  // A line 0-1-2 with the middle leaving and no time to splice.
  bool saw_violation = false;
  for (std::uint64_t seed = 1; seed <= 20 && !saw_violation; ++seed) {
    ScenarioConfig cfg;
    cfg.n = 8;
    cfg.topology = "line";
    cfg.leave_fraction = 0.5;
    cfg.seed = seed;
    cfg.oracle = "always-true";
    Scenario sc = build_departure_scenario(cfg);
    ExperimentSpec opt;
    opt.max_steps(50'000);
    opt.monitors(true);
    const RunResult r = run_to_legitimacy(sc, opt);
    if (!r.safety_ok || !r.reached_legitimate) saw_violation = true;
  }
  EXPECT_TRUE(saw_violation);
}

TEST(FdpProperty, AlwaysFalseOracleBlocksAllExits) {
  ScenarioConfig cfg;
  cfg.n = 8;
  cfg.topology = "gnp";
  cfg.leave_fraction = 0.5;
  cfg.seed = 5;
  cfg.oracle = "always-false";
  Scenario sc = build_departure_scenario(cfg);
  RandomScheduler sched;
  for (int i = 0; i < 30'000; ++i) (void)sc.world->step(sched);
  EXPECT_EQ(sc.world->exits(), 0u);  // no liveness without an oracle
}

TEST(FdpProperty, ExitsNeverDisconnectStayers) {
  // Every exit is guarded by SINGLE; with the safety monitor checking
  // after every single action, any disconnecting exit would be caught at
  // the exact step it happens.
  ScenarioConfig cfg;
  cfg.n = 12;
  cfg.topology = "gnp";
  cfg.leave_fraction = 0.4;
  cfg.seed = 17;
  Scenario sc = build_departure_scenario(cfg);
  SafetyMonitor safety(*sc.world, 1);
  sc.world->add_observer(&safety);
  RandomScheduler sched;
  for (int i = 0; i < 120'000 && !all_leaving_gone(*sc.world); ++i)
    (void)sc.world->step(sched);
  EXPECT_TRUE(all_leaving_gone(*sc.world));
  EXPECT_TRUE(safety.ok());
}

TEST(FdpProperty, ClosureLegitimateStaysLegitimate) {
  ScenarioConfig cfg;
  cfg.n = 10;
  cfg.topology = "tree";
  cfg.leave_fraction = 0.3;
  cfg.seed = 23;
  Scenario sc = build_departure_scenario(cfg);
  ExperimentSpec opt;
  opt.max_steps(300'000);
  opt.closure_steps(5'000);
  const RunResult r = run_to_legitimacy(sc, opt);
  ASSERT_TRUE(r.reached_legitimate) << r.failure;
  EXPECT_TRUE(r.closure_held);
}

TEST(FdpProperty, QuietOracleUsuallySafeOnSparseWorkload) {
  // The practical timeout-based oracle the paper suggests: not exact, but
  // with a generous quiet window it behaves on a small clean line.
  ScenarioConfig cfg;
  cfg.n = 6;
  cfg.topology = "line";
  cfg.leave_fraction = 0.3;
  cfg.seed = 31;
  cfg.oracle = "quiet:12";
  Scenario sc = build_departure_scenario(cfg);
  ExperimentSpec opt;
  opt.max_steps(200'000);
  const RunResult r = run_to_legitimacy(sc, opt);
  // We only require termination here; safety of the heuristic is
  // quantified (not asserted) in bench_e8_oracles.
  EXPECT_TRUE(all_leaving_gone(*sc.world));
  (void)r;
}

}  // namespace
}  // namespace fdp
