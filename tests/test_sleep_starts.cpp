// Initial states with asleep processes — the arbitrary-state corner the
// model explicitly allows (any asleep process with a pending message is
// relevant, hence a legal initial state).
#include <gtest/gtest.h>

#include "analysis/experiment.hpp"
#include "analysis/monitors.hpp"

namespace fdp {
namespace {

ScenarioConfig sleepy_config(std::uint64_t seed, DeparturePolicy policy) {
  ScenarioConfig cfg;
  cfg.n = 12;
  cfg.topology = "gnp";
  cfg.leave_fraction = 0.3;
  cfg.policy = policy;
  cfg.invalid_mode_prob = 0.3;
  cfg.initial_asleep_prob = 0.5;
  cfg.seed = seed;
  return cfg;
}

TEST(SleepStarts, SleepersAreRelevantByConstruction) {
  Scenario sc = build_departure_scenario(
      sleepy_config(3, DeparturePolicy::ExitWithOracle));
  const Snapshot s = take_snapshot(*sc.world);
  std::size_t asleep = 0;
  const auto hib = s.hibernating();
  for (ProcessId p = 0; p < sc.world->size(); ++p) {
    if (s.life[p] == LifeState::Asleep) {
      ++asleep;
      EXPECT_FALSE(hib[p]) << "initial sleeper " << p << " is hibernating";
    }
  }
  EXPECT_GT(asleep, 0u);
}

class SleepStartSweep : public testing::TestWithParam<std::uint64_t> {};

TEST_P(SleepStartSweep, FdpConvergesFromSleepyStates) {
  Scenario sc = build_departure_scenario(
      sleepy_config(GetParam(), DeparturePolicy::ExitWithOracle));
  ExperimentSpec opt;
  opt.max_steps(500'000);
  opt.monitors(true);
  const RunResult r = run_to_legitimacy(sc, opt);
  EXPECT_TRUE(r.reached_legitimate) << r.failure;
  EXPECT_TRUE(r.safety_ok && r.phi_monotone && r.audit_ok) << r.failure;
  // Every staying sleeper must have been woken (condition (i)).
  for (ProcessId p = 0; p < sc.world->size(); ++p) {
    if (sc.world->mode(p) == Mode::Staying) {
      EXPECT_EQ(sc.world->life(p), LifeState::Awake);
    }
  }
}

TEST_P(SleepStartSweep, FspConvergesFromSleepyStates) {
  Scenario sc = build_departure_scenario(
      sleepy_config(GetParam() + 100, DeparturePolicy::Sleep));
  ExperimentSpec opt;
  opt.max_steps(500'000);
  const RunResult r = run_to_legitimacy(sc, opt.exclusion(Exclusion::Hibernating));
  EXPECT_TRUE(r.reached_legitimate) << r.failure;
  EXPECT_EQ(sc.world->exits(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SleepStartSweep,
                         testing::Range<std::uint64_t>(1, 9));

TEST(Traffic, PerProcessAccounting) {
  ScenarioConfig cfg;
  cfg.n = 8;
  cfg.topology = "star";  // node with the smallest id is the hub
  cfg.leave_fraction = 0.0;
  cfg.seed = 5;
  Scenario sc = build_departure_scenario(cfg);
  TrafficMonitor traffic;
  sc.world->add_observer(&traffic);
  RandomScheduler sched;
  for (int i = 0; i < 5'000; ++i) (void)sc.world->step(sched);

  std::uint64_t sent_total = 0, recv_total = 0;
  for (ProcessId p = 0; p < sc.world->size(); ++p) {
    sent_total += traffic.sent_by(p);
    recv_total += traffic.received_by(p);
  }
  EXPECT_EQ(sent_total, traffic.total_sent());
  EXPECT_EQ(recv_total, traffic.deliveries());
  EXPECT_GT(traffic.sent(Verb::Present), 0u);
  // The star hub (process 0 by construction of gen::star) receives far
  // more than the mean: imbalance well above 1.
  EXPECT_GT(traffic.receive_imbalance(), 1.5);
  EXPECT_GT(traffic.received_by(0), traffic.received_by(1));
}

}  // namespace
}  // namespace fdp
