// Integration: the FDP protocol reaches a legitimate state (Theorem 3) on
// a grid of topologies, schedulers and corruption levels, with the safety
// and potential monitors attached (Lemmas 2 and 3 as run invariants).
#include <gtest/gtest.h>

#include "analysis/experiment.hpp"

namespace fdp {
namespace {

struct Case {
  const char* topology;
  SchedulerKind sched;
  double leave_fraction;
  double corruption;  // drives invalid modes / anchors / in-flight noise
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  std::string s = std::string(c.topology) + "_" + to_string(c.sched) + "_l" +
                  std::to_string(static_cast<int>(c.leave_fraction * 100)) +
                  "_c" + std::to_string(static_cast<int>(c.corruption * 100));
  return s;
}

class FdpConvergence : public testing::TestWithParam<Case> {};

TEST_P(FdpConvergence, ReachesLegitimateStateSafely) {
  const Case& c = GetParam();
  ScenarioConfig cfg;
  cfg.n = 14;
  cfg.topology = c.topology;
  cfg.leave_fraction = c.leave_fraction;
  cfg.invalid_mode_prob = c.corruption;
  cfg.random_anchor_prob = c.corruption;
  cfg.inflight_per_node = c.corruption * 2;
  cfg.seed = 12345;

  Scenario sc = build_departure_scenario(cfg);
  ExperimentSpec opt;
  opt.max_steps(400'000);
  opt.scheduler(SchedulerSpec::of(c.sched));
  opt.monitors(true, 1);
  opt.closure_steps(500);

  const RunResult r = run_to_legitimacy(sc, opt);
  EXPECT_TRUE(r.reached_legitimate) << r.failure;
  EXPECT_TRUE(r.safety_ok) << r.failure;
  EXPECT_TRUE(r.phi_monotone) << r.failure;
  EXPECT_TRUE(r.audit_ok) << r.failure;
  EXPECT_TRUE(r.closure_held);
  EXPECT_EQ(r.exits, sc.leaving_count);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FdpConvergence,
    testing::Values(
        // Clean departures on every topology under the random scheduler.
        Case{"line", SchedulerKind::Random, 0.3, 0.0},
        Case{"ring", SchedulerKind::Random, 0.3, 0.0},
        Case{"star", SchedulerKind::Random, 0.3, 0.0},
        Case{"clique", SchedulerKind::Random, 0.3, 0.0},
        Case{"tree", SchedulerKind::Random, 0.3, 0.0},
        Case{"gnp", SchedulerKind::Random, 0.3, 0.0},
        Case{"wild", SchedulerKind::Random, 0.3, 0.0},
        // Heavy corruption (self-stabilization proper).
        Case{"line", SchedulerKind::Random, 0.3, 0.5},
        Case{"gnp", SchedulerKind::Random, 0.3, 0.5},
        Case{"wild", SchedulerKind::Random, 0.3, 0.5},
        Case{"tree", SchedulerKind::Random, 0.5, 1.0},
        // Scheduler sweep.
        Case{"gnp", SchedulerKind::RoundRobin, 0.3, 0.3},
        Case{"gnp", SchedulerKind::Rounds, 0.3, 0.3},
        Case{"gnp", SchedulerKind::Adversarial, 0.3, 0.3},
        Case{"wild", SchedulerKind::RoundRobin, 0.5, 0.5},
        Case{"wild", SchedulerKind::Adversarial, 0.5, 0.5},
        // Extreme leave fractions.
        Case{"gnp", SchedulerKind::Random, 0.9, 0.3},
        Case{"line", SchedulerKind::Random, 0.9, 0.0},
        Case{"star", SchedulerKind::Random, 0.8, 0.5}),
    case_name);

TEST(FdpConvergenceSeeds, ManySeedsOneConfig) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    ScenarioConfig cfg;
    cfg.n = 12;
    cfg.topology = "wild";
    cfg.leave_fraction = 0.4;
    cfg.invalid_mode_prob = 0.4;
    cfg.random_anchor_prob = 0.4;
    cfg.inflight_per_node = 1.0;
    cfg.seed = seed;
    Scenario sc = build_departure_scenario(cfg);
    ExperimentSpec opt;
    opt.max_steps(400'000);
    opt.monitors(true);
    const RunResult r = run_to_legitimacy(sc, opt);
    EXPECT_TRUE(r.reached_legitimate) << "seed " << seed << ": " << r.failure;
    EXPECT_TRUE(r.safety_ok && r.phi_monotone && r.audit_ok)
        << "seed " << seed << ": " << r.failure;
  }
}

TEST(FdpConvergence, AllLeavingClampedToKeepOneStayer) {
  ScenarioConfig cfg;
  cfg.n = 6;
  cfg.topology = "line";
  cfg.leave_fraction = 1.0;  // clamped to n-1 leaving
  cfg.seed = 3;
  Scenario sc = build_departure_scenario(cfg);
  EXPECT_EQ(sc.leaving_count, 5u);
  ExperimentSpec opt;
  opt.max_steps(400'000);
  const RunResult r = run_to_legitimacy(sc, opt);
  EXPECT_TRUE(r.reached_legitimate) << r.failure;
}

TEST(FdpConvergence, SingletonWorld) {
  ScenarioConfig cfg;
  cfg.n = 1;
  cfg.leave_fraction = 0.0;
  cfg.topology = "line";
  Scenario sc = build_departure_scenario(cfg);
  ExperimentSpec opt;
  opt.max_steps(100);
  const RunResult r = run_to_legitimacy(sc, opt);
  EXPECT_TRUE(r.reached_legitimate);
}

TEST(FdpConvergence, NoLeavingProcessesIsImmediatelyLegitimate) {
  ScenarioConfig cfg;
  cfg.n = 8;
  cfg.leave_fraction = 0.0;
  cfg.topology = "ring";
  Scenario sc = build_departure_scenario(cfg);
  ExperimentSpec opt;
  opt.max_steps(10'000);
  const RunResult r = run_to_legitimacy(sc, opt);
  EXPECT_TRUE(r.reached_legitimate);
  EXPECT_EQ(r.exits, 0u);
}

TEST(FdpConvergence, PhiNeverAboveInitial) {
  ScenarioConfig cfg;
  cfg.n = 12;
  cfg.topology = "gnp";
  cfg.leave_fraction = 0.25;
  cfg.invalid_mode_prob = 0.6;
  cfg.inflight_per_node = 2.0;
  cfg.seed = 9;
  Scenario sc = build_departure_scenario(cfg);
  ExperimentSpec opt;
  opt.max_steps(400'000);
  const RunResult r = run_to_legitimacy(sc, opt);
  ASSERT_TRUE(r.reached_legitimate) << r.failure;
  EXPECT_GT(r.phi_initial, 0u);
  EXPECT_LE(r.phi_final, r.phi_initial);
}

TEST(FdpConvergence, PhiEventuallyDrainsToZero) {
  // Even with no departures at all, invalid knowledge about staying
  // processes is eventually corrected by the periodic self-introduction
  // (the paper: "periodically executed self-introduction can ensure that
  // invalid information vanishes from the system").
  ScenarioConfig cfg;
  cfg.n = 12;
  cfg.topology = "gnp";
  cfg.leave_fraction = 0.0;
  cfg.invalid_mode_prob = 0.7;
  cfg.inflight_per_node = 2.0;
  cfg.seed = 21;
  Scenario sc = build_departure_scenario(cfg);
  ASSERT_GT(phi(*sc.world), 0u);
  RandomScheduler sched;
  for (int block = 0; block < 150 && phi(*sc.world) > 0; ++block) {
    for (int i = 0; i < 1000; ++i) ASSERT_TRUE(sc.world->step(sched));
  }
  EXPECT_EQ(phi(*sc.world), 0u);
}

}  // namespace
}  // namespace fdp
