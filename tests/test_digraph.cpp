#include "graph/digraph.hpp"

#include <gtest/gtest.h>

namespace fdp {
namespace {

TEST(DiGraph, StartsEmpty) {
  DiGraph g(3);
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.simple_edge_count(), 0u);
}

TEST(DiGraph, AddAndQueryEdges) {
  DiGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_EQ(g.multiplicity(0, 1), 2u);
  EXPECT_EQ(g.multiplicity(1, 0), 0u);
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.simple_edge_count(), 2u);
}

TEST(DiGraph, RemoveDecrementsMultiplicity) {
  DiGraph g(2);
  g.add_edge(0, 1, 2);
  EXPECT_TRUE(g.remove_edge(0, 1));
  EXPECT_EQ(g.multiplicity(0, 1), 1u);
  EXPECT_TRUE(g.remove_edge(0, 1));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.remove_edge(0, 1));
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(DiGraph, OutNeighborsDistinct) {
  DiGraph g(4);
  g.add_edge(1, 0);
  g.add_edge(1, 2, 3);
  g.add_edge(1, 3);
  const auto nbrs = g.out_neighbors(1);
  EXPECT_EQ(nbrs, (std::vector<NodeId>{0, 2, 3}));
  EXPECT_TRUE(g.out_neighbors(0).empty());
}

TEST(DiGraph, EdgesExpandMultiplicity) {
  DiGraph g(2);
  g.add_edge(0, 1, 2);
  g.add_edge(1, 0);
  EXPECT_EQ(g.edges().size(), 3u);
  EXPECT_EQ(g.simple_edges().size(), 2u);
}

TEST(DiGraph, SameSupportIgnoresMultiplicity) {
  DiGraph a(2), b(2);
  a.add_edge(0, 1, 5);
  b.add_edge(0, 1, 1);
  EXPECT_TRUE(a.same_support(b));
  b.add_edge(1, 0);
  EXPECT_FALSE(a.same_support(b));
}

TEST(DiGraph, EqualityIncludesMultiplicity) {
  DiGraph a(2), b(2);
  a.add_edge(0, 1, 2);
  b.add_edge(0, 1, 1);
  EXPECT_FALSE(a == b);
  b.add_edge(0, 1, 1);
  EXPECT_TRUE(a == b);
}

TEST(DiGraph, BidirectedExtension) {
  DiGraph g(3);
  g.add_edge(0, 1, 3);
  g.add_edge(1, 2);
  const DiGraph bi = g.bidirected();
  EXPECT_EQ(bi.multiplicity(0, 1), 1u);
  EXPECT_EQ(bi.multiplicity(1, 0), 1u);
  EXPECT_TRUE(bi.has_edge(2, 1));
  EXPECT_EQ(bi.edge_count(), 4u);
}

TEST(DiGraph, SupportUnion) {
  DiGraph a(3), b(3);
  a.add_edge(0, 1, 2);
  b.add_edge(1, 2);
  b.add_edge(0, 1);
  const DiGraph u = a.support_union(b);
  EXPECT_EQ(u.multiplicity(0, 1), 1u);
  EXPECT_TRUE(u.has_edge(1, 2));
  EXPECT_EQ(u.edge_count(), 2u);
}

TEST(DiGraph, StripSelfLoops) {
  DiGraph g(2);
  g.add_edge(0, 0, 2);
  g.add_edge(0, 1);
  EXPECT_EQ(g.strip_self_loops(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(DiGraph, EnsureNodesGrows) {
  DiGraph g(2);
  g.ensure_nodes(5);
  EXPECT_EQ(g.node_count(), 5u);
  g.ensure_nodes(3);  // never shrinks
  EXPECT_EQ(g.node_count(), 5u);
}

}  // namespace
}  // namespace fdp
