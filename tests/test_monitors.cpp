// The incremental monitors must agree with the brute-force definitions
// they replaced: the maintained Φ equals a full recompute at every step
// (including under chaos faults, which mutate channels outside actions),
// and the safety monitor's BFS-skipping never changes its verdict.
#include "analysis/experiment.hpp"
#include "analysis/monitors.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "analysis/scenario.hpp"
#include "core/potential.hpp"
#include "sim/chaos.hpp"
#include "sim/world.hpp"

namespace fdp {
namespace {

ScenarioConfig monitor_config(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.n = 16;
  cfg.topology = "wild";
  cfg.leave_fraction = 0.3;
  cfg.invalid_mode_prob = 0.4;
  cfg.inflight_per_node = 1.0;
  cfg.initial_asleep_prob = 0.2;
  cfg.seed = seed;
  return cfg;
}

TEST(PotentialMonitor, IncrementalPhiMatchesFullRecomputeEveryStep) {
  // The strongest form of the cross-check: after *every* action of a
  // chaotic run (exits, sleeps, wakes, duplicated and dropped messages),
  // the delta-maintained Φ equals potential() recomputed from scratch.
  for (std::uint64_t seed : {3u, 11u}) {
    Scenario sc = build_departure_scenario(monitor_config(seed));
    ChaosScheduler chaos(SchedulerSpec::of(SchedulerKind::Random).make(),
                         /*p_duplicate=*/0.15, /*p_drop=*/0.10, seed * 13);
    chaos.bind(sc.world.get());
    PotentialMonitor mon(*sc.world, 1);
    mon.set_crosscheck_every(0);  // we assert explicitly below
    sc.world->add_observer(&mon);
    for (int i = 0; i < 3'000; ++i) {
      if (!sc.world->step(chaos)) break;
      ASSERT_EQ(mon.current_phi(), phi(*sc.world))
          << "seed=" << seed << " step=" << sc.world->steps();
    }
  }
}

TEST(PotentialMonitor, BuiltInCrosscheckRunsCleanAtStrideOne) {
  // Same property via the monitor's own knob: a divergence would abort
  // via FDP_CHECK, so surviving the run is the assertion.
  Scenario sc = build_departure_scenario(monitor_config(7));
  ChaosScheduler chaos(SchedulerSpec::of(SchedulerKind::Random).make(), 0.15, 0.10, 91);
  chaos.bind(sc.world.get());
  PotentialMonitor mon(*sc.world, 1);
  mon.set_crosscheck_every(1);
  sc.world->add_observer(&mon);
  for (int i = 0; i < 3'000; ++i)
    if (!sc.world->step(chaos)) break;
  EXPECT_EQ(mon.current_phi(), phi(*sc.world));
}

TEST(PotentialMonitor, NeverIncreasesWithoutFaults) {
  // Lemma 3 through the incremental path: a fault-free protocol run never
  // raises Φ, and the monitor's verdict reflects it.
  Scenario sc = build_departure_scenario(monitor_config(5));
  RandomScheduler sched;
  PotentialMonitor mon(*sc.world, 1);
  sc.world->add_observer(&mon);
  for (int i = 0; i < 20'000; ++i)
    if (!sc.world->step(sched)) break;
  EXPECT_TRUE(mon.ok());
  EXPECT_EQ(mon.current_phi(), 0u);
}

TEST(PotentialMonitor, InjectAndRemoveHooksKeepPhiExact) {
  // Out-of-action channel mutations (scenario posts, chaos primitives)
  // flow through on_inject/on_remove; Φ must track them too.
  Scenario sc = build_departure_scenario(monitor_config(9));
  PotentialMonitor mon(*sc.world, 1);
  sc.world->add_observer(&mon);
  World& w = *sc.world;
  ASSERT_EQ(mon.current_phi(), phi(w));
  // Duplicate and then discard a message on every non-empty channel.
  for (ProcessId p = 0; p < w.size(); ++p) {
    if (w.channel(p).empty() || w.gone(p)) continue;
    const std::uint64_t seq = w.channel(p).peek(0).seq;
    ASSERT_TRUE(w.duplicate_message(p, seq));
    ASSERT_EQ(mon.current_phi(), phi(w)) << "after duplicate at " << p;
    ASSERT_TRUE(w.discard_message(p, seq));
    ASSERT_EQ(mon.current_phi(), phi(w)) << "after discard at " << p;
  }
  for (ProcessId p = 0; p < w.size(); ++p) {
    w.clear_channel(p);
    ASSERT_EQ(mon.current_phi(), phi(w)) << "after clear at " << p;
  }
  EXPECT_EQ(w.live_message_count(), 0u);
}

TEST(SafetyMonitor, SkipsBfsOnNoopTimeoutsWithoutChangingVerdict) {
  // Run well past convergence: the tail is pure no-op timeouts, which the
  // dirty-tracking monitor skips. A stride-1 reference monitor without
  // skipping is impossible to construct externally, so assert the two
  // observable halves: the verdict holds and a meaningful share of
  // stride points were skipped.
  Scenario sc = build_departure_scenario(monitor_config(4));
  RandomScheduler sched;
  SafetyMonitor mon(*sc.world, 1);
  sc.world->add_observer(&mon);
  for (int i = 0; i < 30'000; ++i)
    if (!sc.world->step(sched)) break;
  EXPECT_TRUE(mon.ok());
  EXPECT_GT(mon.skipped(), 0u);
  EXPECT_EQ(mon.checks() + mon.skipped(), sc.world->steps());
}

TEST(SafetyMonitor, ChaosChannelMutationsMarkDirty) {
  // Drops can disconnect the graph; the monitor must not skip the BFS
  // that would notice. Chaos on a line topology with aggressive drops is
  // the canonical violation generator (see test_chaos.cpp); here we only
  // need dirtying to keep the checker engaged.
  Scenario sc = build_departure_scenario([] {
    ScenarioConfig cfg;
    cfg.n = 10;
    cfg.topology = "line";
    cfg.leave_fraction = 0.4;
    cfg.seed = 6;
    return cfg;
  }());
  ChaosScheduler chaos(SchedulerSpec::of(SchedulerKind::Random).make(), 0.0,
                       /*p_drop=*/0.3, 41);
  chaos.bind(sc.world.get());
  SafetyMonitor mon(*sc.world, 1);
  sc.world->add_observer(&mon);
  for (int i = 0; i < 10'000; ++i) (void)sc.world->step(chaos);
  EXPECT_GT(mon.checks(), 0u);
}

}  // namespace
}  // namespace fdp
