// MessagePool recycles the rare spilled Message::refs buffers so a channel
// that drains and refills — even with oversized overlay messages — reaches
// zero steady-state allocations. These tests pin the freelist mechanics,
// the debug double-release guard, and the end-to-end zero-alloc property.
#include "sim/message_pool.hpp"

#include <gtest/gtest.h>

#include <utility>

#include "sim/channel.hpp"
#include "util/alloc_stats.hpp"

namespace fdp {
namespace {

RefInfo ri(ProcessId id) {
  return RefInfo{Ref::make(id), ModeInfo::Staying, id * 100};
}

Message big_message(std::uint64_t seq, std::size_t nrefs) {
  Message m;
  m.set_verb(Verb::Overlay);
  m.seq = seq;
  for (std::size_t i = 0; i < nrefs; ++i) m.refs.push_back(ri(i + 1));
  return m;
}

TEST(MessagePool, RecycleHarvestsSpilledBuffer) {
  MessagePool pool;
  Message m = big_message(1, 5);
  ASSERT_TRUE(m.refs.spilled());
  pool.recycle(m);
  EXPECT_EQ(pool.pooled(), 1u);
  EXPECT_TRUE(m.refs.empty());
  EXPECT_FALSE(m.refs.spilled());
}

TEST(MessagePool, RecycleInlineMessageIsNoop) {
  MessagePool pool;
  Message m = Message::present(ri(1));
  pool.recycle(m);
  EXPECT_EQ(pool.pooled(), 0u);
}

TEST(MessagePool, AcquireReturnsFittingBuffer) {
  MessagePool pool;
  Message small = big_message(1, 3);
  Message large = big_message(2, 20);
  pool.recycle(small);
  pool.recycle(large);
  ASSERT_EQ(pool.pooled(), 2u);

  const RefList::HeapBuf b = pool.acquire(10);  // only the large one fits
  ASSERT_NE(b.ptr, nullptr);
  EXPECT_GE(b.cap, 10u);
  EXPECT_EQ(pool.pooled(), 1u);

  EXPECT_EQ(pool.acquire(10).ptr, nullptr);  // nothing left that fits
  EXPECT_EQ(pool.pooled(), 1u);

  pool.release(b);  // hand it back so the pool dtor frees it
}

TEST(MessagePool, AssignRefsReusesPooledStorage) {
  MessagePool pool;
  Message donor = big_message(1, 8);
  pool.recycle(donor);
  ASSERT_EQ(pool.pooled(), 1u);

  RefList src;
  for (std::size_t i = 0; i < 6; ++i) src.push_back(ri(i + 1));

  Message copy;
  const auto before = alloc_stats::snapshot();
  pool.assign_refs(copy.refs, {src.data(), src.size()});
  if (alloc_stats::hooked()) {
    EXPECT_EQ(alloc_stats::allocs_since(before), 0u);  // pooled, not malloc'd
  }
  EXPECT_EQ(pool.pooled(), 0u);
  ASSERT_EQ(copy.refs.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_EQ(copy.refs[i].ref.id(), src[i].ref.id());
}

TEST(MessagePool, AssignRefsInlineNeverTouchesPool) {
  MessagePool pool;
  Message donor = big_message(1, 8);
  pool.recycle(donor);

  RefList src{ri(1)};  // fits inline
  Message copy;
  pool.assign_refs(copy.refs, {src.data(), src.size()});
  EXPECT_EQ(pool.pooled(), 1u);  // untouched
  EXPECT_FALSE(copy.refs.spilled());
  EXPECT_EQ(copy.refs.size(), 1u);
}

// A channel cycled through drain-and-refill with oversized messages must
// reach an allocation-free steady state: every spilled buffer the kernel
// consumes is recycled and re-adopted instead of freed and re-malloc'd.
TEST(MessagePool, DrainedAndRefilledChannelIsAllocFree) {
  if (!alloc_stats::hooked())
    GTEST_SKIP() << "counting operator new/delete not linked";

  MessagePool pool;
  Channel ch;
  std::uint64_t next_seq = 1;

  // The template message exists once; each cycle copies it through the
  // pool exactly like the kernel's duplicate/admit/consume path does.
  const Message tmpl = big_message(0, 6);

  auto cycle = [&] {
    for (int i = 0; i < 8; ++i) {
      Message stored;
      stored.set_verb(tmpl.verb());
      stored.seq = next_seq++;
      pool.assign_refs(stored.refs, {tmpl.refs.data(), tmpl.refs.size()});
      ch.push(std::move(stored));
    }
    while (!ch.empty()) {
      Message taken = ch.take(0);
      pool.recycle(taken);
    }
  };

  for (int warm = 0; warm < 4; ++warm) cycle();  // reach high-water capacity

  const auto before = alloc_stats::snapshot();
  for (int round = 0; round < 100; ++round) cycle();
  EXPECT_EQ(alloc_stats::allocs_since(before), 0u);
}

#if !defined(NDEBUG)
TEST(MessagePoolDeath, DoubleReleaseAborts) {
  MessagePool pool;
  Message m = big_message(1, 5);
  ASSERT_TRUE(m.refs.spilled());
  const RefList::HeapBuf b{m.refs.data(),
                           static_cast<std::uint32_t>(m.refs.capacity())};
  pool.recycle(m);  // first release: buffer enters the freelist
  EXPECT_DEATH(pool.release(b), "f.ptr != b.ptr");
}
#endif

}  // namespace
}  // namespace fdp
