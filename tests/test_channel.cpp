#include "sim/channel.hpp"

#include <gtest/gtest.h>

namespace fdp {
namespace {

Message msg(std::uint64_t seq) {
  Message m;
  m.seq = seq;
  return m;
}

TEST(Channel, StartsEmpty) {
  Channel ch;
  EXPECT_TRUE(ch.empty());
  EXPECT_EQ(ch.size(), 0u);
  EXPECT_EQ(ch.oldest_index(), 0u);
}

TEST(Channel, PushAndTakeAnyIndex) {
  Channel ch;
  ch.push(msg(1));
  ch.push(msg(2));
  ch.push(msg(3));
  EXPECT_EQ(ch.size(), 3u);
  const Message taken = ch.take(1);
  EXPECT_EQ(taken.seq, 2u);
  EXPECT_EQ(ch.size(), 2u);
  // Remaining messages are 1 and 3 (order irrelevant).
  std::uint64_t sum = 0;
  for (const Message& m : ch.messages()) sum += m.seq;
  EXPECT_EQ(sum, 4u);
}

TEST(Channel, OldestIndexFindsSmallestSeq) {
  Channel ch;
  ch.push(msg(9));
  ch.push(msg(4));
  ch.push(msg(7));
  EXPECT_EQ(ch.peek(ch.oldest_index()).seq, 4u);
}

TEST(Channel, IndexOfSeq) {
  Channel ch;
  ch.push(msg(10));
  ch.push(msg(20));
  EXPECT_LT(ch.index_of_seq(20), ch.size());
  EXPECT_EQ(ch.peek(ch.index_of_seq(20)).seq, 20u);
  EXPECT_EQ(ch.index_of_seq(99), ch.size());  // absent
}

TEST(Channel, NonFifoRemovalPreservesOthers) {
  Channel ch;
  for (std::uint64_t s = 1; s <= 10; ++s) ch.push(msg(s));
  (void)ch.take(ch.index_of_seq(5));
  (void)ch.take(ch.index_of_seq(1));
  EXPECT_EQ(ch.size(), 8u);
  EXPECT_EQ(ch.index_of_seq(5), ch.size());
  EXPECT_EQ(ch.index_of_seq(1), ch.size());
  EXPECT_LT(ch.index_of_seq(10), ch.size());
}

TEST(Channel, ClearEmpties) {
  Channel ch;
  ch.push(msg(1));
  ch.clear();
  EXPECT_TRUE(ch.empty());
}

}  // namespace
}  // namespace fdp
