#include "sim/channel.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace fdp {
namespace {

Message msg(std::uint64_t seq) {
  Message m;
  m.seq = seq;
  return m;
}

TEST(Channel, StartsEmpty) {
  Channel ch;
  EXPECT_TRUE(ch.empty());
  EXPECT_EQ(ch.size(), 0u);
  EXPECT_EQ(ch.oldest_index(), 0u);
}

TEST(Channel, PushAndTakeAnyIndex) {
  Channel ch;
  ch.push(msg(1));
  ch.push(msg(2));
  ch.push(msg(3));
  EXPECT_EQ(ch.size(), 3u);
  const Message taken = ch.take(1);
  EXPECT_EQ(taken.seq, 2u);
  EXPECT_EQ(ch.size(), 2u);
  // Remaining messages are 1 and 3 (order irrelevant).
  std::uint64_t sum = 0;
  for (const Message& m : ch.messages()) sum += m.seq;
  EXPECT_EQ(sum, 4u);
}

TEST(Channel, OldestIndexFindsSmallestSeq) {
  Channel ch;
  ch.push(msg(9));
  ch.push(msg(4));
  ch.push(msg(7));
  EXPECT_EQ(ch.peek(ch.oldest_index()).seq, 4u);
}

TEST(Channel, IndexOfSeq) {
  Channel ch;
  ch.push(msg(10));
  ch.push(msg(20));
  EXPECT_LT(ch.index_of_seq(20), ch.size());
  EXPECT_EQ(ch.peek(ch.index_of_seq(20)).seq, 20u);
  EXPECT_EQ(ch.index_of_seq(99), ch.size());  // absent
}

TEST(Channel, NonFifoRemovalPreservesOthers) {
  Channel ch;
  for (std::uint64_t s = 1; s <= 10; ++s) ch.push(msg(s));
  (void)ch.take(ch.index_of_seq(5));
  (void)ch.take(ch.index_of_seq(1));
  EXPECT_EQ(ch.size(), 8u);
  EXPECT_EQ(ch.index_of_seq(5), ch.size());
  EXPECT_EQ(ch.index_of_seq(1), ch.size());
  EXPECT_LT(ch.index_of_seq(10), ch.size());
}

TEST(Channel, ClearEmpties) {
  Channel ch;
  ch.push(msg(1));
  ch.clear();
  EXPECT_TRUE(ch.empty());
  EXPECT_FALSE(ch.contains(1));
  // A fresh message set after clear: old seqs must not leak from the
  // lazily-compacted oldest-index heap.
  ch.push(msg(8));
  EXPECT_EQ(ch.peek(ch.oldest_index()).seq, 8u);
}

TEST(Channel, Contains) {
  Channel ch;
  ch.push(msg(5));
  EXPECT_TRUE(ch.contains(5));
  EXPECT_FALSE(ch.contains(6));
  (void)ch.take(ch.index_of_seq(5));
  EXPECT_FALSE(ch.contains(5));
}

TEST(Channel, TakeLastSlotKeepsIndexConsistent) {
  // take() swap-removes; taking the last slot is the self-swap edge case.
  Channel ch;
  ch.push(msg(1));
  ch.push(msg(2));
  const Message taken = ch.take(1);
  EXPECT_EQ(taken.seq, 2u);
  EXPECT_EQ(ch.index_of_seq(1), 0u);
  EXPECT_EQ(ch.peek(ch.oldest_index()).seq, 1u);
}

TEST(Channel, OldestIndexSurvivesInterleavedRemovals) {
  // The min-seq heap discards stale heads lazily: removing the current
  // oldest (and re-querying) must always surface the true next-oldest.
  Channel ch;
  for (std::uint64_t s : {7u, 3u, 9u, 1u, 5u}) ch.push(msg(s));
  std::vector<std::uint64_t> drained;
  while (!ch.empty()) drained.push_back(ch.take(ch.oldest_index()).seq);
  EXPECT_EQ(drained, (std::vector<std::uint64_t>{1, 3, 5, 7, 9}));
}

TEST(Channel, OldestIndexAfterArbitraryRemoval) {
  Channel ch;
  for (std::uint64_t s = 1; s <= 5; ++s) ch.push(msg(s));
  (void)ch.take(ch.index_of_seq(1));  // remove the heap's current min
  (void)ch.take(ch.index_of_seq(2));  // and the next
  EXPECT_EQ(ch.peek(ch.oldest_index()).seq, 3u);
}

// Every take() swap-removes a slot, reordering the dense view under the
// lazily-rebuilt min-seq heap. Interleave random pushes with removals at
// random positions and check oldest_index() against a naive linear scan
// after every mutation — any heap/slot-map inconsistency introduced by
// the reordering shows up as a wrong or out-of-range oldest slot.
TEST(Channel, OldestIndexMatchesNaiveScanUnderChurn) {
  Channel ch;
  Rng rng(99);
  std::uint64_t next_seq = 1;
  for (int round = 0; round < 2000; ++round) {
    const bool do_push = ch.empty() || rng.below(3) != 0;
    if (do_push) {
      ch.push(msg(next_seq++));
    } else {
      (void)ch.take(rng.below(ch.size()));
    }
    if (ch.empty()) {
      EXPECT_EQ(ch.oldest_index(), 0u);
      continue;
    }
    std::size_t naive = 0;
    for (std::size_t i = 1; i < ch.size(); ++i)
      if (ch.peek(i).seq < ch.peek(naive).seq) naive = i;
    const std::size_t idx = ch.oldest_index();
    ASSERT_LT(idx, ch.size());
    EXPECT_EQ(ch.peek(idx).seq, ch.peek(naive).seq) << "round " << round;
  }
}

// Draining strictly oldest-first after heavy churn must produce seqs in
// ascending order (the heap may hold stale entries for taken messages;
// they must all be discarded, never surfaced).
TEST(Channel, OldestFirstDrainAfterChurnIsSorted) {
  Channel ch;
  Rng rng(7);
  std::uint64_t next_seq = 1;
  for (int round = 0; round < 500; ++round) {
    if (ch.empty() || rng.below(2) == 0) ch.push(msg(next_seq++));
    else (void)ch.take(rng.below(ch.size()));
  }
  std::uint64_t prev = 0;
  while (!ch.empty()) {
    const Message m = ch.take(ch.oldest_index());
    EXPECT_GT(m.seq, prev);
    prev = m.seq;
  }
}

TEST(ChannelDeath, DuplicateSeqAborts) {
  Channel ch;
  ch.push(msg(4));
  EXPECT_DEATH(ch.push(msg(4)), "duplicate");
}

}  // namespace
}  // namespace fdp
