#include "sim/world.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace fdp {
namespace {

using testsupport::ScriptedProcess;
using testsupport::spawn_scripted;

TEST(World, SpawnAssignsDenseIds) {
  World w(1);
  const auto refs = spawn_scripted(w, 3);
  EXPECT_EQ(w.size(), 3u);
  EXPECT_EQ(refs[0].id(), 0u);
  EXPECT_EQ(refs[2].id(), 2u);
  EXPECT_EQ(w.process(1).self(), refs[1]);
}

TEST(World, TimeoutExecutesAwakeProcess) {
  World w(1);
  const auto refs = spawn_scripted(w, 1);
  (void)refs;
  RoundRobinScheduler sched;
  ASSERT_TRUE(w.step(sched));
  EXPECT_EQ(w.timeouts(), 1u);
  EXPECT_EQ(w.process_as<ScriptedProcess>(0).timeout_count, 1);
}

TEST(World, SendAndDeliver) {
  World w(1);
  const auto refs = spawn_scripted(w, 2);
  auto& p0 = w.process_as<ScriptedProcess>(0);
  p0.on_timeout_fn = [&](ScriptedProcess& self, Context& ctx) {
    (void)self;
    ctx.send(refs[1], Message::present(RefInfo{refs[0], ModeInfo::Staying, 0}));
  };
  RoundRobinScheduler sched;
  // Run a few steps: p0 timeout sends; delivery reaches p1.
  for (int i = 0; i < 4; ++i) (void)w.step(sched);
  EXPECT_GE(w.sends(), 1u);
  EXPECT_GE(w.deliveries(), 1u);
  EXPECT_GE(w.process_as<ScriptedProcess>(1).message_count, 1);
}

TEST(World, SelfSendIsDelivered) {
  World w(1);
  const auto refs = spawn_scripted(w, 1);
  auto& p0 = w.process_as<ScriptedProcess>(0);
  bool sent = false;
  p0.on_timeout_fn = [&](ScriptedProcess&, Context& ctx) {
    if (!sent) {
      ctx.send(refs[0], Message{});
      sent = true;
    }
  };
  RoundRobinScheduler sched;
  for (int i = 0; i < 4; ++i) (void)w.step(sched);
  EXPECT_EQ(w.process_as<ScriptedProcess>(0).message_count, 1);
}

TEST(World, ExitMakesProcessGoneAndFreezesChannel) {
  World w(1);
  const auto refs = spawn_scripted(w, 2);
  auto& p0 = w.process_as<ScriptedProcess>(0);
  p0.on_timeout_fn = [&](ScriptedProcess&, Context& ctx) {
    ctx.exit_process();
  };
  auto& p1 = w.process_as<ScriptedProcess>(1);
  p1.on_timeout_fn = [&](ScriptedProcess&, Context& ctx) {
    ctx.send(refs[0], Message{});
  };
  RoundRobinScheduler sched;
  for (int i = 0; i < 10; ++i) (void)w.step(sched);
  EXPECT_EQ(w.life(0), LifeState::Gone);
  EXPECT_EQ(w.exits(), 1u);
  // Messages to the gone process pile up, never delivered.
  EXPECT_GT(w.channel(0).size(), 0u);
  EXPECT_EQ(w.process_as<ScriptedProcess>(0).message_count, 0);
  // Gone processes never run their timeout again.
  const int timeouts_after = p0.timeout_count;
  for (int i = 0; i < 10; ++i) (void)w.step(sched);
  EXPECT_EQ(p0.timeout_count, timeouts_after);
}

TEST(World, SleepAndWakeOnMessage) {
  World w(1);
  const auto refs = spawn_scripted(w, 2);
  auto& p0 = w.process_as<ScriptedProcess>(0);
  p0.on_timeout_fn = [&](ScriptedProcess&, Context& ctx) {
    ctx.sleep_process();
  };
  bool p1_sent = false;
  auto& p1 = w.process_as<ScriptedProcess>(1);
  p1.on_timeout_fn = [&](ScriptedProcess&, Context& ctx) {
    if (w.life(0) == LifeState::Asleep && !p1_sent) {
      ctx.send(refs[0], Message{});
      p1_sent = true;
    }
  };
  RoundRobinScheduler sched;
  for (int i = 0; i < 20 && w.wakes() == 0; ++i) (void)w.step(sched);
  EXPECT_EQ(w.sleeps(), 1u);  // slept once...
  EXPECT_EQ(w.wakes(), 1u);   // ...and was woken by the message
  EXPECT_EQ(w.process_as<ScriptedProcess>(0).message_count, 1);
  EXPECT_EQ(w.life(0), LifeState::Awake);
}

TEST(World, LiveMessageCountIgnoresGoneChannels) {
  World w(1);
  const auto refs = spawn_scripted(w, 2);
  w.post(refs[0], Message{});
  w.post(refs[1], Message{});
  EXPECT_EQ(w.live_message_count(), 2u);
  w.force_life(0, LifeState::Gone);
  EXPECT_EQ(w.live_message_count(), 1u);
}

TEST(World, OldestLiveMessage) {
  World w(1);
  const auto refs = spawn_scripted(w, 2);
  w.post(refs[1], Message{});  // seq 1
  w.post(refs[0], Message{});  // seq 2
  const auto [proc, seq] = w.oldest_live_message();
  EXPECT_EQ(proc, 1u);
  EXPECT_EQ(seq, 1u);
}

TEST(World, RunUntilStopsOnPredicate) {
  World w(1);
  spawn_scripted(w, 2);
  RandomScheduler sched;
  const bool ok = w.run_until(sched, 1000, [](const World& world) {
    return world.steps() >= 10;
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(w.steps(), 10u);
}

TEST(World, ObserverSeesActionRecord) {
  struct Probe final : Observer {
    int actions = 0;
    int sends_seen = 0;
    void on_action(const World&, const ActionRecord& rec) override {
      ++actions;
      sends_seen += static_cast<int>(rec.sent.size());
    }
  } probe;

  World w(1);
  const auto refs = spawn_scripted(w, 2);
  auto& p0 = w.process_as<ScriptedProcess>(0);
  p0.on_timeout_fn = [&](ScriptedProcess&, Context& ctx) {
    ctx.send(refs[1], Message{});
  };
  w.add_observer(&probe);
  RoundRobinScheduler sched;
  for (int i = 0; i < 6; ++i) (void)w.step(sched);
  EXPECT_EQ(probe.actions, 6);
  EXPECT_GT(probe.sends_seen, 0);
  w.remove_observer(&probe);
  (void)w.step(sched);
  EXPECT_EQ(probe.actions, 6);
}

TEST(World, OracleInstalledAndQueried) {
  World w(1);
  spawn_scripted(w, 1);
  w.set_oracle([](const World&, ProcessId p) { return p == 0; });
  EXPECT_TRUE(w.oracle_value(0));
}

TEST(WorldDeath, OracleWithoutInstallAborts) {
  World w(1);
  spawn_scripted(w, 1);
  EXPECT_DEATH((void)w.oracle_value(0), "no oracle");
}

TEST(World, DeterministicGivenSeedAndScheduler) {
  auto run = [](std::uint64_t seed) {
    World w(seed);
    const auto refs = spawn_scripted(w, 4);
    for (ProcessId p = 0; p < 4; ++p) {
      auto& proc = w.process_as<ScriptedProcess>(p);
      proc.on_timeout_fn = [&, p](ScriptedProcess&, Context& ctx) {
        ctx.send(refs[(p + 1) % 4], Message{});
      };
    }
    RandomScheduler sched;
    for (int i = 0; i < 200; ++i) (void)w.step(sched);
    return std::tuple(w.sends(), w.deliveries(), w.timeouts());
  };
  EXPECT_EQ(run(77), run(77));
  EXPECT_NE(run(77), run(78));
}

}  // namespace
}  // namespace fdp
