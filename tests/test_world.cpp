#include "sim/world.hpp"

#include <gtest/gtest.h>

#include "graph/process_graph.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace fdp {
namespace {

using testsupport::ScriptedProcess;
using testsupport::spawn_scripted;

TEST(World, SpawnAssignsDenseIds) {
  World w(1);
  const auto refs = spawn_scripted(w, 3);
  EXPECT_EQ(w.size(), 3u);
  EXPECT_EQ(refs[0].id(), 0u);
  EXPECT_EQ(refs[2].id(), 2u);
  EXPECT_EQ(w.process(1).self(), refs[1]);
}

TEST(World, TimeoutExecutesAwakeProcess) {
  World w(1);
  const auto refs = spawn_scripted(w, 1);
  (void)refs;
  RoundRobinScheduler sched;
  ASSERT_TRUE(w.step(sched));
  EXPECT_EQ(w.timeouts(), 1u);
  EXPECT_EQ(w.process_as<ScriptedProcess>(0).timeout_count, 1);
}

TEST(World, SendAndDeliver) {
  World w(1);
  const auto refs = spawn_scripted(w, 2);
  auto& p0 = w.process_as<ScriptedProcess>(0);
  p0.on_timeout_fn = [&](ScriptedProcess& self, Context& ctx) {
    (void)self;
    ctx.send(refs[1], Message::present(RefInfo{refs[0], ModeInfo::Staying, 0}));
  };
  RoundRobinScheduler sched;
  // Run a few steps: p0 timeout sends; delivery reaches p1.
  for (int i = 0; i < 4; ++i) (void)w.step(sched);
  EXPECT_GE(w.sends(), 1u);
  EXPECT_GE(w.deliveries(), 1u);
  EXPECT_GE(w.process_as<ScriptedProcess>(1).message_count, 1);
}

TEST(World, SelfSendIsDelivered) {
  World w(1);
  const auto refs = spawn_scripted(w, 1);
  auto& p0 = w.process_as<ScriptedProcess>(0);
  bool sent = false;
  p0.on_timeout_fn = [&](ScriptedProcess&, Context& ctx) {
    if (!sent) {
      ctx.send(refs[0], Message{});
      sent = true;
    }
  };
  RoundRobinScheduler sched;
  for (int i = 0; i < 4; ++i) (void)w.step(sched);
  EXPECT_EQ(w.process_as<ScriptedProcess>(0).message_count, 1);
}

TEST(World, ExitMakesProcessGoneAndFreezesChannel) {
  World w(1);
  const auto refs = spawn_scripted(w, 2);
  auto& p0 = w.process_as<ScriptedProcess>(0);
  p0.on_timeout_fn = [&](ScriptedProcess&, Context& ctx) {
    ctx.exit_process();
  };
  auto& p1 = w.process_as<ScriptedProcess>(1);
  p1.on_timeout_fn = [&](ScriptedProcess&, Context& ctx) {
    ctx.send(refs[0], Message{});
  };
  RoundRobinScheduler sched;
  for (int i = 0; i < 10; ++i) (void)w.step(sched);
  EXPECT_EQ(w.life(0), LifeState::Gone);
  EXPECT_EQ(w.exits(), 1u);
  // Messages to the gone process pile up, never delivered.
  EXPECT_GT(w.channel(0).size(), 0u);
  EXPECT_EQ(w.process_as<ScriptedProcess>(0).message_count, 0);
  // Gone processes never run their timeout again.
  const int timeouts_after = p0.timeout_count;
  for (int i = 0; i < 10; ++i) (void)w.step(sched);
  EXPECT_EQ(p0.timeout_count, timeouts_after);
}

TEST(World, SleepAndWakeOnMessage) {
  World w(1);
  const auto refs = spawn_scripted(w, 2);
  auto& p0 = w.process_as<ScriptedProcess>(0);
  p0.on_timeout_fn = [&](ScriptedProcess&, Context& ctx) {
    ctx.sleep_process();
  };
  bool p1_sent = false;
  auto& p1 = w.process_as<ScriptedProcess>(1);
  p1.on_timeout_fn = [&](ScriptedProcess&, Context& ctx) {
    if (w.life(0) == LifeState::Asleep && !p1_sent) {
      ctx.send(refs[0], Message{});
      p1_sent = true;
    }
  };
  RoundRobinScheduler sched;
  for (int i = 0; i < 20 && w.wakes() == 0; ++i) (void)w.step(sched);
  EXPECT_EQ(w.sleeps(), 1u);  // slept once...
  EXPECT_EQ(w.wakes(), 1u);   // ...and was woken by the message
  EXPECT_EQ(w.process_as<ScriptedProcess>(0).message_count, 1);
  EXPECT_EQ(w.life(0), LifeState::Awake);
}

TEST(World, LiveMessageCountIgnoresGoneChannels) {
  World w(1);
  const auto refs = spawn_scripted(w, 2);
  w.post(refs[0], Message{});
  w.post(refs[1], Message{});
  EXPECT_EQ(w.live_message_count(), 2u);
  w.force_life(0, LifeState::Gone);
  EXPECT_EQ(w.live_message_count(), 1u);
}

TEST(World, OldestLiveMessage) {
  World w(1);
  const auto refs = spawn_scripted(w, 2);
  w.post(refs[1], Message{});  // seq 1
  w.post(refs[0], Message{});  // seq 2
  const auto [proc, seq] = w.oldest_live_message();
  EXPECT_EQ(proc, 1u);
  EXPECT_EQ(seq, 1u);
}

TEST(World, AwakeIndexTracksForcedTransitions) {
  World w(1);
  spawn_scripted(w, 5);
  EXPECT_EQ(w.awake_count(), 5u);
  w.force_life(1, LifeState::Asleep);
  w.force_life(3, LifeState::Gone);
  EXPECT_EQ(w.awake_count(), 3u);
  EXPECT_EQ(w.kth_awake(0), 0u);
  EXPECT_EQ(w.kth_awake(1), 2u);
  EXPECT_EQ(w.kth_awake(2), 4u);
  EXPECT_EQ(w.next_awake(0), 0u);
  EXPECT_EQ(w.next_awake(1), 2u);
  EXPECT_EQ(w.next_awake(5), kNoProcess);
  w.force_life(1, LifeState::Awake);
  EXPECT_EQ(w.awake_count(), 4u);
  EXPECT_EQ(w.kth_awake(1), 1u);
}

TEST(World, ResurrectionReregistersChannelMessages) {
  // The model checker reconstructs arbitrary states via force_life,
  // including Gone -> Awake. Messages parked in the gone channel must
  // rejoin every live-message index on the way back.
  World w(1);
  const auto refs = spawn_scripted(w, 2);
  w.post(refs[0], Message{});  // seq 1
  w.post(refs[0], Message{});  // seq 2
  w.force_life(0, LifeState::Gone);
  EXPECT_EQ(w.live_message_count(), 0u);
  EXPECT_EQ(w.find_live_message(1), kNoProcess);
  EXPECT_EQ(w.oldest_live_message().first, kNoProcess);
  w.force_life(0, LifeState::Awake);
  EXPECT_EQ(w.live_message_count(), 2u);
  EXPECT_EQ(w.find_live_message(1), 0u);
  EXPECT_EQ(w.find_live_message(2), 0u);
  const auto [proc, seq] = w.oldest_live_message();
  EXPECT_EQ(proc, 0u);
  EXPECT_EQ(seq, 1u);
}

TEST(World, SeqWatermarkBoundsEveryAssignedSeq) {
  World w(1);
  const auto refs = spawn_scripted(w, 2);
  const std::uint64_t before = w.seq_watermark();
  w.post(refs[1], Message{});
  EXPECT_EQ(w.seq_watermark(), before + 1);
  const std::uint64_t seq = w.channel(1).peek(0).seq;
  EXPECT_LT(seq, w.seq_watermark());
  EXPECT_EQ(w.find_live_message(seq), 1u);
  EXPECT_TRUE(w.discard_message(1, seq));
  EXPECT_EQ(w.find_live_message(seq), kNoProcess);
}

TEST(World, ClearChannelUpdatesLiveIndices) {
  World w(1);
  const auto refs = spawn_scripted(w, 2);
  w.post(refs[0], Message{});
  w.post(refs[0], Message{});
  w.post(refs[1], Message{});
  EXPECT_EQ(w.live_message_count(), 3u);
  w.clear_channel(0);
  EXPECT_EQ(w.live_message_count(), 1u);
  EXPECT_EQ(w.next_deliverable(0), 1u);
  EXPECT_EQ(w.oldest_live_message().first, 1u);
}

TEST(World, KthLiveMessageMatchesChannelScanOrder) {
  // kth_live_message must enumerate in (process ascending, channel slot)
  // order — the order the pre-index kernel's full scan produced, which
  // is what keeps RandomScheduler's sampling byte-identical.
  World w(1);
  const auto refs = spawn_scripted(w, 4);
  w.post(refs[0], Message{});
  w.post(refs[2], Message{});
  w.post(refs[2], Message{});
  w.post(refs[3], Message{});
  w.force_life(3, LifeState::Gone);  // channel 3 drops out of the index
  std::vector<std::pair<ProcessId, std::uint64_t>> want;
  for (ProcessId p = 0; p < 4; ++p) {
    if (w.gone(p)) continue;
    for (std::size_t i = 0; i < w.channel(p).size(); ++i)
      want.emplace_back(p, w.channel(p).peek(i).seq);
  }
  ASSERT_EQ(w.live_message_count(), want.size());
  for (std::uint64_t k = 0; k < want.size(); ++k)
    EXPECT_EQ(w.kth_live_message(k), want[k]) << "k=" << k;
}

TEST(World, RunUntilStopsOnPredicate) {
  World w(1);
  spawn_scripted(w, 2);
  RandomScheduler sched;
  const bool ok = w.run_until(sched, 1000, [](const World& world) {
    return world.steps() >= 10;
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(w.steps(), 10u);
}

TEST(World, ObserverSeesActionRecord) {
  struct Probe final : Observer {
    int actions = 0;
    int sends_seen = 0;
    void on_action(const Substrate&, const ActionRecord& rec) override {
      ++actions;
      sends_seen += static_cast<int>(rec.sent.size());
    }
  } probe;

  World w(1);
  const auto refs = spawn_scripted(w, 2);
  auto& p0 = w.process_as<ScriptedProcess>(0);
  p0.on_timeout_fn = [&](ScriptedProcess&, Context& ctx) {
    ctx.send(refs[1], Message{});
  };
  w.add_observer(&probe);
  RoundRobinScheduler sched;
  for (int i = 0; i < 6; ++i) (void)w.step(sched);
  EXPECT_EQ(probe.actions, 6);
  EXPECT_GT(probe.sends_seen, 0);
  w.remove_observer(&probe);
  (void)w.step(sched);
  EXPECT_EQ(probe.actions, 6);
}

TEST(World, OracleInstalledAndQueried) {
  World w(1);
  spawn_scripted(w, 1);
  w.set_oracle([](const Substrate&, ProcessId p) { return p == 0; });
  EXPECT_TRUE(w.oracle_value(0));
}

TEST(WorldDeath, OracleWithoutInstallAborts) {
  World w(1);
  spawn_scripted(w, 1);
  EXPECT_DEATH((void)w.oracle_value(0), "no oracle");
}

TEST(World, QuietCountTracksSleepChannelAndLifeTransitions) {
  World w(1);
  const auto refs = spawn_scripted(w, 3);
  EXPECT_EQ(w.quiet_count(), 0u);  // everyone spawns awake
  w.force_life(0, LifeState::Asleep);
  w.force_life(1, LifeState::Asleep);
  EXPECT_EQ(w.quiet_count(), 2u);
  // A message into a quiet channel un-quiets it; draining re-quiets it.
  w.post(refs[0], Message{});
  EXPECT_EQ(w.quiet_count(), 1u);
  const std::uint64_t seq = w.channel(0).messages().front().seq;
  ASSERT_TRUE(w.discard_message(0, seq));
  EXPECT_EQ(w.quiet_count(), 2u);
  // Gone and Awake are never quiet, in both transition directions.
  w.force_life(1, LifeState::Gone);
  EXPECT_EQ(w.quiet_count(), 1u);
  w.force_life(0, LifeState::Awake);
  EXPECT_EQ(w.quiet_count(), 0u);
  w.force_life(2, LifeState::Asleep);
  EXPECT_EQ(w.quiet_count(), 1u);
}

TEST(World, IncidentNongoneMatchesSnapshotWhenNoQuietProcess) {
  // Random churn: stored-ref rewrites, sends carrying refs, exits. With
  // every process awake the maintained edge index must agree with the
  // full snapshot's incident_relevant at every step.
  for (std::uint64_t seed : {11u, 29u}) {
    World w(seed);
    const auto refs = spawn_scripted(w, 12);
    Rng rng(seed * 997);
    for (ProcessId p = 0; p < 12; ++p) {
      auto& proc = w.process_as<ScriptedProcess>(p);
      proc.on_timeout_fn = [&, p](ScriptedProcess& self, Context& ctx) {
        const ProcessId q = rng.below(12);
        if (rng.chance(0.4)) {
          self.nbrs().insert({refs[q], ModeInfo::Staying, 0});
        } else if (rng.chance(0.4)) {
          ctx.send(refs[q],
                   Message::present(RefInfo{refs[p], ModeInfo::Staying, 0}));
        } else if (rng.chance(0.3) && self.timeout_count > 4) {
          ctx.exit_process();
        }
      };
      proc.on_message_fn = [&](ScriptedProcess& self, Context&,
                               const Message& m) {
        for (const RefInfo& r : m.refs) self.nbrs().insert(r);
      };
    }
    RandomScheduler sched;
    for (int i = 0; i < 400; ++i) {
      if (!w.step(sched)) break;
      ASSERT_EQ(w.quiet_count(), 0u);
      const Snapshot s = take_snapshot(w);
      for (ProcessId p = 0; p < 12; ++p) {
        ASSERT_EQ(w.incident_nongone(p), s.incident_relevant(p))
            << "seed " << seed << " step " << i << " proc " << p;
        ASSERT_EQ(w.referenced_by_other(p), s.referenced_anywhere(p))
            << "seed " << seed << " step " << i << " proc " << p;
      }
    }
  }
}

TEST(World, EdgeIndexRebuildsAfterOutOfBandMutation) {
  World w(1);
  const auto refs = spawn_scripted(w, 4);
  w.process_as<ScriptedProcess>(0).nbrs().insert(
      {refs[1], ModeInfo::Staying, 0});
  EXPECT_EQ(w.incident_nongone(0), 1u);
  // process_mut-style access invalidates the index; the next query must
  // observe the new stored refs, not the cached adjacency.
  auto& p0 = w.process_as<ScriptedProcess>(0);
  p0.nbrs().insert({refs[2], ModeInfo::Staying, 0});
  p0.nbrs().insert({refs[3], ModeInfo::Staying, 0});
  EXPECT_EQ(w.incident_nongone(0), 3u);
  EXPECT_TRUE(w.referenced_by_other(2));
  w.force_life(2, LifeState::Gone);
  EXPECT_EQ(w.incident_nongone(0), 2u);
  EXPECT_EQ(w.incident_nongone(2), 0u);
}

TEST(World, DeterministicGivenSeedAndScheduler) {
  auto run = [](std::uint64_t seed) {
    World w(seed);
    const auto refs = spawn_scripted(w, 4);
    for (ProcessId p = 0; p < 4; ++p) {
      auto& proc = w.process_as<ScriptedProcess>(p);
      proc.on_timeout_fn = [&, p](ScriptedProcess&, Context& ctx) {
        ctx.send(refs[(p + 1) % 4], Message{});
      };
    }
    RandomScheduler sched;
    for (int i = 0; i < 200; ++i) (void)w.step(sched);
    return std::tuple(w.sends(), w.deliveries(), w.timeouts());
  };
  EXPECT_EQ(run(77), run(77));
  EXPECT_NE(run(77), run(78));
}

}  // namespace
}  // namespace fdp
