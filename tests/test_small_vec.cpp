// SmallVec is the storage behind Message::refs: up to N elements inline in
// the object, heap spill only beyond that. These tests pin the properties
// the kernel depends on — the inline/spill boundary, storage retention
// across clear(), buffer hand-off for the pool, and value semantics.
#include "util/small_vec.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "util/alloc_stats.hpp"

namespace fdp {
namespace {

using Vec2 = SmallVec<std::uint64_t, 2>;

TEST(SmallVec, StartsInlineAndEmpty) {
  Vec2 v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 2u);
  EXPECT_FALSE(v.spilled());
}

TEST(SmallVec, StaysInlineUpToN) {
  Vec2 v;
  const auto before = alloc_stats::snapshot();
  v.push_back(10);
  v.push_back(20);
  if (alloc_stats::hooked()) {
    EXPECT_EQ(alloc_stats::allocs_since(before), 0u);
  }
  EXPECT_FALSE(v.spilled());
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 10u);
  EXPECT_EQ(v[1], 20u);
}

TEST(SmallVec, SpillsPastNAndPreservesElements) {
  Vec2 v{1, 2};
  v.push_back(3);
  EXPECT_TRUE(v.spilled());
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1u);
  EXPECT_EQ(v[1], 2u);
  EXPECT_EQ(v[2], 3u);
  EXPECT_GE(v.capacity(), 3u);
}

TEST(SmallVec, DataPointerMovesOffInlineOnSpill) {
  Vec2 v{1, 2};
  const std::uint64_t* inline_data = v.data();
  v.push_back(3);
  EXPECT_NE(v.data(), inline_data);  // now heap storage
  // Iterators over the spilled storage see every element in order.
  std::uint64_t sum = 0;
  for (std::uint64_t x : v) sum += x;
  EXPECT_EQ(sum, 6u);
}

TEST(SmallVec, ClearKeepsStorage) {
  Vec2 v{1, 2, 3, 4};
  ASSERT_TRUE(v.spilled());
  const std::uint64_t* heap_data = v.data();
  const std::size_t cap = v.capacity();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.spilled());
  EXPECT_EQ(v.data(), heap_data);
  EXPECT_EQ(v.capacity(), cap);
  // Refilling reuses the retained buffer: no allocation.
  const auto before = alloc_stats::snapshot();
  for (std::uint64_t i = 0; i < cap; ++i) v.push_back(i);
  if (alloc_stats::hooked()) {
    EXPECT_EQ(alloc_stats::allocs_since(before), 0u);
  }
}

TEST(SmallVec, CopyIsDeepAcrossSpillBoundary) {
  Vec2 small{7, 8};
  Vec2 big{1, 2, 3, 4, 5};
  Vec2 small_copy = small;
  Vec2 big_copy = big;
  EXPECT_EQ(small_copy, small);
  EXPECT_EQ(big_copy, big);
  EXPECT_NE(big_copy.data(), big.data());  // independent storage
  big_copy[0] = 99;
  EXPECT_EQ(big[0], 1u);
}

TEST(SmallVec, MoveStealsSpilledBuffer) {
  Vec2 v{1, 2, 3};
  const std::uint64_t* heap_data = v.data();
  Vec2 moved = std::move(v);
  EXPECT_EQ(moved.data(), heap_data);  // buffer stolen, not copied
  EXPECT_EQ(moved.size(), 3u);
  EXPECT_TRUE(v.empty());          // NOLINT(bugprone-use-after-move)
  EXPECT_FALSE(v.spilled());       // source reset to inline storage
  v.push_back(42);                 // source is reusable
  EXPECT_EQ(v[0], 42u);
}

TEST(SmallVec, MoveOfInlineVecCopiesAndEmptiesSource) {
  Vec2 v{5, 6};
  Vec2 moved = std::move(v);
  EXPECT_EQ(moved.size(), 2u);
  EXPECT_EQ(moved[0], 5u);
  EXPECT_FALSE(moved.spilled());
  EXPECT_TRUE(v.empty());  // NOLINT(bugprone-use-after-move)
}

TEST(SmallVec, MoveAssignReleasesOwnBuffer) {
  Vec2 a{1, 2, 3};
  Vec2 b{9, 8, 7, 6};
  a = std::move(b);
  EXPECT_EQ(a.size(), 4u);
  EXPECT_EQ(a[0], 9u);
  EXPECT_TRUE(b.empty());  // NOLINT(bugprone-use-after-move)
}

TEST(SmallVec, AssignFromVectorRoundTrips) {
  std::vector<std::uint64_t> src(17);
  std::iota(src.begin(), src.end(), 0);
  Vec2 v = src;  // implicit converting ctor (protocol layers rely on it)
  ASSERT_EQ(v.size(), src.size());
  for (std::size_t i = 0; i < src.size(); ++i) EXPECT_EQ(v[i], src[i]);
}

TEST(SmallVec, AssignShrinkKeepsCapacity) {
  Vec2 v{1, 2, 3, 4, 5};
  const std::size_t cap = v.capacity();
  const std::uint64_t two[] = {8, 9};
  v.assign(two, 2);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[1], 9u);
  EXPECT_EQ(v.capacity(), cap);  // shrinking assign never reallocates
  EXPECT_TRUE(v.spilled());
}

TEST(SmallVec, ReleaseHeapDetachesAndResets) {
  Vec2 v{1, 2, 3};
  ASSERT_TRUE(v.spilled());
  const std::size_t cap = v.capacity();
  Vec2::HeapBuf b = v.release_heap();
  ASSERT_NE(b.ptr, nullptr);
  EXPECT_EQ(b.cap, cap);
  EXPECT_TRUE(v.empty());
  EXPECT_FALSE(v.spilled());
  EXPECT_EQ(v.capacity(), 2u);

  // Re-attaching the buffer restores heap storage without allocating.
  Vec2 w{4, 5};
  const auto before = alloc_stats::snapshot();
  w.adopt_heap(b);
  if (alloc_stats::hooked()) {
    EXPECT_EQ(alloc_stats::allocs_since(before), 0u);
  }
  EXPECT_TRUE(w.spilled());
  EXPECT_EQ(w.capacity(), cap);
  EXPECT_EQ(w.size(), 2u);  // existing elements migrated into the buffer
  EXPECT_EQ(w[0], 4u);
  EXPECT_EQ(w[1], 5u);
}

TEST(SmallVec, ReleaseHeapOnInlineIsNull) {
  Vec2 v{1};
  Vec2::HeapBuf b = v.release_heap();
  EXPECT_EQ(b.ptr, nullptr);
  EXPECT_EQ(v.size(), 1u);  // inline contents untouched
}

TEST(SmallVec, EqualityComparesElements) {
  Vec2 a{1, 2, 3};
  Vec2 b{1, 2, 3};
  Vec2 c{1, 2};
  EXPECT_EQ(a, b);  // one spilled, equal by value
  EXPECT_FALSE(a == c);
  b[2] = 4;
  EXPECT_FALSE(a == b);
}

TEST(SmallVec, GrowthDoublesCapacity) {
  Vec2 v;
  std::size_t reallocs = 0;
  std::size_t last_cap = v.capacity();
  for (std::uint64_t i = 0; i < 1000; ++i) {
    v.push_back(i);
    if (v.capacity() != last_cap) {
      ++reallocs;
      last_cap = v.capacity();
    }
  }
  EXPECT_LE(reallocs, 10u);  // geometric growth, not per-push
  for (std::uint64_t i = 0; i < 1000; ++i) ASSERT_EQ(v[i], i);
}

}  // namespace
}  // namespace fdp
