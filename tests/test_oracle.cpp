#include "core/oracle.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace fdp {
namespace {

using testsupport::ScriptedProcess;
using testsupport::spawn_scripted;

TEST(SingleOracle, TrueForIsolatedProcess) {
  World w(1);
  spawn_scripted(w, 3);
  w.set_oracle(make_single_oracle());
  EXPECT_TRUE(w.oracle_value(0));
}

TEST(SingleOracle, TrueWithExactlyOneNeighbor) {
  World w(1);
  const auto refs = spawn_scripted(w, 3);
  w.process_as<ScriptedProcess>(0).nbrs().insert(
      {refs[1], ModeInfo::Staying, 0});
  w.set_oracle(make_single_oracle());
  EXPECT_TRUE(w.oracle_value(0));
  // Mutual edges with the same process still count as one.
  w.process_as<ScriptedProcess>(1).nbrs().insert(
      {refs[0], ModeInfo::Staying, 0});
  EXPECT_TRUE(w.oracle_value(0));
}

TEST(SingleOracle, FalseWithTwoDistinctNeighbors) {
  World w(1);
  const auto refs = spawn_scripted(w, 3);
  auto& p0 = w.process_as<ScriptedProcess>(0);
  p0.nbrs().insert({refs[1], ModeInfo::Staying, 0});
  p0.nbrs().insert({refs[2], ModeInfo::Staying, 0});
  w.set_oracle(make_single_oracle());
  EXPECT_FALSE(w.oracle_value(0));
}

TEST(SingleOracle, CountsImplicitEdges) {
  World w(1);
  const auto refs = spawn_scripted(w, 3);
  w.process_as<ScriptedProcess>(0).nbrs().insert(
      {refs[1], ModeInfo::Staying, 0});
  // A message in 0's channel carrying 2's reference adds neighbor 2.
  w.post(refs[0], Message::present(RefInfo{refs[2], ModeInfo::Staying, 0}));
  w.set_oracle(make_single_oracle());
  EXPECT_FALSE(w.oracle_value(0));
}

TEST(SingleOracle, IgnoresGoneNeighbors) {
  World w(1);
  const auto refs = spawn_scripted(w, 3);
  auto& p0 = w.process_as<ScriptedProcess>(0);
  p0.nbrs().insert({refs[1], ModeInfo::Staying, 0});
  p0.nbrs().insert({refs[2], ModeInfo::Staying, 0});
  w.force_life(2, LifeState::Gone);
  w.set_oracle(make_single_oracle());
  EXPECT_TRUE(w.oracle_value(0));  // only relevant neighbor is 1
}

TEST(NidecOracle, FalseWhileReferenced) {
  World w(1);
  const auto refs = spawn_scripted(w, 2);
  w.process_as<ScriptedProcess>(0).nbrs().insert(
      {refs[1], ModeInfo::Staying, 0});
  w.set_oracle(make_nidec_oracle());
  EXPECT_FALSE(w.oracle_value(1));
  EXPECT_TRUE(w.oracle_value(0));
}

TEST(NidecOracle, FalseWithNonEmptyOwnChannel) {
  World w(1);
  const auto refs = spawn_scripted(w, 2);
  w.post(refs[0], Message{});
  w.set_oracle(make_nidec_oracle());
  EXPECT_FALSE(w.oracle_value(0));
  EXPECT_TRUE(w.oracle_value(1));
}

TEST(AlwaysOracle, Constant) {
  World w(1);
  spawn_scripted(w, 1);
  w.set_oracle(make_always_oracle(true));
  EXPECT_TRUE(w.oracle_value(0));
  w.set_oracle(make_always_oracle(false));
  EXPECT_FALSE(w.oracle_value(0));
}

TEST(QuietOracle, RequiresConsecutiveEmptyObservations) {
  World w(1);
  const auto refs = spawn_scripted(w, 1);
  w.set_oracle(make_quiet_oracle(3));
  EXPECT_FALSE(w.oracle_value(0));  // 1 empty observation
  EXPECT_FALSE(w.oracle_value(0));  // 2
  EXPECT_TRUE(w.oracle_value(0));   // 3
  // A message resets the streak.
  w.post(refs[0], Message{});
  EXPECT_FALSE(w.oracle_value(0));
}

TEST(IncidentOracle, GeneralizesSingle) {
  World w(1);
  const auto refs = spawn_scripted(w, 4);
  auto& p0 = w.process_as<ScriptedProcess>(0);
  p0.nbrs().insert({refs[1], ModeInfo::Staying, 0});
  p0.nbrs().insert({refs[2], ModeInfo::Staying, 0});

  w.set_oracle(make_incident_oracle(0));
  EXPECT_FALSE(w.oracle_value(0));
  EXPECT_TRUE(w.oracle_value(3));  // isolated

  w.set_oracle(make_incident_oracle(1));  // == SINGLE
  EXPECT_FALSE(w.oracle_value(0));

  w.set_oracle(make_incident_oracle(2));
  EXPECT_TRUE(w.oracle_value(0));
}

TEST(IncidentOracle, IncidentOneMatchesSingleOracle) {
  World w(1);
  const auto refs = spawn_scripted(w, 5);
  Rng rng(3);
  for (ProcessId p = 0; p < 5; ++p) {
    for (ProcessId q = 0; q < 5; ++q) {
      if (p != q && rng.chance(0.4))
        w.process_as<ScriptedProcess>(p).nbrs().insert(
            {refs[q], ModeInfo::Staying, 0});
    }
  }
  const OracleFn single = make_single_oracle();
  const OracleFn incident1 = make_incident_oracle(1);
  for (ProcessId p = 0; p < 5; ++p)
    EXPECT_EQ(single(w, p), incident1(w, p)) << "process " << p;
}

TEST(OracleByName, IncidentParsing) {
  World w(1);
  spawn_scripted(w, 1);
  w.set_oracle(oracle_by_name("incident:3"));
  EXPECT_TRUE(w.oracle_value(0));
}

TEST(OracleByName, Dispatch) {
  World w(1);
  spawn_scripted(w, 1);
  for (const char* name :
       {"single", "nidec", "always-true", "always-false", "quiet:2"}) {
    w.set_oracle(oracle_by_name(name));
    (void)w.oracle_value(0);  // must not abort
  }
  w.set_oracle(oracle_by_name("always-true"));
  EXPECT_TRUE(w.oracle_value(0));
}

TEST(OracleByNameDeath, UnknownAborts) {
  EXPECT_DEATH((void)oracle_by_name("magic"), "unknown oracle");
}

}  // namespace
}  // namespace fdp
