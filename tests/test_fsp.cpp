// The Finite Sleep Problem: with the Sleep policy and NO oracle, the
// system reaches a state where every leaving process hibernates (and, by
// the claim of Foreback et al. reproduced in the model tests, stays
// permanently asleep).
#include <gtest/gtest.h>

#include "analysis/experiment.hpp"
#include "core/oracle.hpp"

namespace fdp {
namespace {

ScenarioConfig fsp_config(std::uint64_t seed, const char* topo,
                          double corruption) {
  ScenarioConfig cfg;
  cfg.n = 12;
  cfg.topology = topo;
  cfg.leave_fraction = 0.4;
  cfg.policy = DeparturePolicy::Sleep;
  cfg.invalid_mode_prob = corruption;
  cfg.random_anchor_prob = corruption;
  cfg.inflight_per_node = corruption;
  cfg.seed = seed;
  // The FSP needs no oracle; install a poisoned one to prove it is never
  // consulted (consulting it would abort the run).
  cfg.oracle = "single";
  return cfg;
}

class FspSweep
    : public testing::TestWithParam<std::tuple<std::uint64_t, const char*>> {};

TEST_P(FspSweep, ReachesHibernation) {
  const auto [seed, topo] = GetParam();
  ScenarioConfig cfg = fsp_config(seed, topo, 0.3);
  Scenario sc = build_departure_scenario(cfg);
  ExperimentSpec opt;
  opt.max_steps(500'000);
  opt.monitors(true);
  const RunResult r = run_to_legitimacy(sc, opt.exclusion(Exclusion::Hibernating));
  EXPECT_TRUE(r.reached_legitimate) << r.failure;
  EXPECT_TRUE(r.safety_ok) << r.failure;
  EXPECT_TRUE(r.phi_monotone) << r.failure;
  EXPECT_EQ(sc.world->exits(), 0u);  // exit is not available in the FSP
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FspSweep,
    testing::Combine(testing::Values<std::uint64_t>(1, 2, 3, 4, 5),
                     testing::Values("line", "gnp", "wild")));

TEST(Fsp, OracleIsNeverConsulted) {
  ScenarioConfig cfg = fsp_config(7, "gnp", 0.2);
  Scenario sc = build_departure_scenario(cfg);
  sc.world->set_oracle([](const Substrate&, ProcessId) -> bool {
    ADD_FAILURE() << "FSP consulted the oracle";
    return false;
  });
  ExperimentSpec opt;
  opt.max_steps(300'000);
  const RunResult r = run_to_legitimacy(sc, opt.exclusion(Exclusion::Hibernating));
  EXPECT_TRUE(r.reached_legitimate) << r.failure;
}

TEST(Fsp, SleepersWakeForLateMessagesAndResettle) {
  ScenarioConfig cfg = fsp_config(11, "gnp", 0.0);
  Scenario sc = build_departure_scenario(cfg);
  ExperimentSpec opt;
  opt.max_steps(300'000);
  const RunResult r = run_to_legitimacy(sc, opt.exclusion(Exclusion::Hibernating));
  ASSERT_TRUE(r.reached_legitimate) << r.failure;

  // Poke one sleeping leaver with a fresh reference: it must wake, route
  // the reference away and eventually hibernate again.
  ProcessId sleeper = kNoProcess;
  ProcessId stayer = kNoProcess;
  for (ProcessId p = 0; p < sc.world->size(); ++p) {
    if (sc.world->mode(p) == Mode::Leaving &&
        sc.world->life(p) == LifeState::Asleep)
      sleeper = p;
    if (sc.world->mode(p) == Mode::Staying) stayer = p;
  }
  ASSERT_NE(sleeper, kNoProcess);
  ASSERT_NE(stayer, kNoProcess);
  sc.world->post(sc.refs[sleeper],
                 Message::forward(RefInfo{sc.refs[stayer], ModeInfo::Staying,
                                          sc.world->process(stayer).key()}));
  LegitimacyChecker checker(*sc.world, Exclusion::Hibernating);
  RandomScheduler sched;
  bool resettled = false;
  for (int block = 0; block < 200 && !resettled; ++block) {
    for (int i = 0; i < 200; ++i) (void)sc.world->step(sched);
    resettled = checker.legitimate(*sc.world);
  }
  EXPECT_TRUE(resettled);
  EXPECT_GT(sc.world->wakes(), 0u);
}

TEST(Fsp, HibernatingClaimHolds) {
  // The claim from Foreback et al. (quoted in the paper's model section):
  // once hibernating, a process is permanently asleep — no later action
  // can wake it, because no relevant process can ever obtain a path to it.
  ScenarioConfig cfg = fsp_config(13, "wild", 0.3);
  Scenario sc = build_departure_scenario(cfg);
  ExperimentSpec opt;
  opt.max_steps(300'000);
  const RunResult r = run_to_legitimacy(sc, opt.exclusion(Exclusion::Hibernating));
  ASSERT_TRUE(r.reached_legitimate) << r.failure;
  const std::uint64_t wakes_before = sc.world->wakes();
  RandomScheduler sched;
  for (int i = 0; i < 20'000; ++i) {
    if (!sc.world->step(sched)) break;
  }
  EXPECT_EQ(sc.world->wakes(), wakes_before);
}

}  // namespace
}  // namespace fdp
