// Unit tests for the overlay maintenance rules themselves: exactly which
// references each overlay keeps, delegates and introduces per maintain().
#include <gtest/gtest.h>

#include <map>

#include "overlay/clique.hpp"
#include "overlay/linearization.hpp"
#include "overlay/star.hpp"
#include "test_support.hpp"

namespace fdp {
namespace {

using testsupport::CaptureOverlayCtx;

RefInfo ri(ProcessId id, std::uint64_t key) {
  return RefInfo{Ref::make(id), ModeInfo::Staying, key};
}

std::map<ProcessId, bool> stored_ids(const OverlayProtocol& o) {
  std::map<ProcessId, bool> m;
  for (const RefInfo& r : o.stored()) m[r.ref.id()] = true;
  return m;
}

// --- Linearization ---

TEST(LinearizationUnit, KeepsClosestBothSides) {
  Linearization lin;
  lin.bind(Ref::make(0), 500);
  CaptureOverlayCtx ctx(Ref::make(0), 500);
  lin.integrate(ri(1, 100));
  lin.integrate(ri(2, 300));  // closest left
  lin.integrate(ri(3, 700));  // closest right
  lin.integrate(ri(4, 900));
  lin.maintain(ctx);
  const auto kept = stored_ids(lin);
  EXPECT_TRUE(kept.count(2));
  EXPECT_TRUE(kept.count(3));
  EXPECT_FALSE(kept.count(1));
  EXPECT_FALSE(kept.count(4));
  // Delegations one hop toward the sorted position: 1 -> 2, 4 -> 3.
  ASSERT_EQ(ctx.sends.size(), 2u);
  std::map<ProcessId, ProcessId> went;  // carried -> dest
  for (const auto& s : ctx.sends) {
    ASSERT_EQ(s.refs.size(), 1u);
    went[s.refs[0].ref.id()] = s.dest.id();
    EXPECT_EQ(s.tag, kTagDeliverRef);
  }
  EXPECT_EQ(went[1], 2u);
  EXPECT_EQ(went[4], 3u);
}

TEST(LinearizationUnit, ChainDelegationOrder) {
  // Three left refs l1 < l2 < l3 < me: l1 goes to l2, l2 goes to l3.
  Linearization lin;
  lin.bind(Ref::make(0), 900);
  CaptureOverlayCtx ctx(Ref::make(0), 900);
  lin.integrate(ri(1, 100));
  lin.integrate(ri(2, 200));
  lin.integrate(ri(3, 300));
  lin.maintain(ctx);
  std::map<ProcessId, ProcessId> went;
  for (const auto& s : ctx.sends) went[s.refs[0].ref.id()] = s.dest.id();
  EXPECT_EQ(went[1], 2u);
  EXPECT_EQ(went[2], 3u);
  EXPECT_EQ(stored_ids(lin).size(), 1u);  // only l3 kept
}

TEST(LinearizationUnit, StableAtTarget) {
  Linearization lin;
  lin.bind(Ref::make(0), 500);
  CaptureOverlayCtx ctx(Ref::make(0), 500);
  lin.integrate(ri(1, 400));
  lin.integrate(ri(2, 600));
  lin.maintain(ctx);
  EXPECT_TRUE(ctx.sends.empty());
  EXPECT_EQ(lin.stored().size(), 2u);
}

TEST(LinearizationUnit, IntroductionTargetsAreTheKeptPair) {
  Linearization lin;
  lin.bind(Ref::make(0), 500);
  lin.integrate(ri(1, 100));
  lin.integrate(ri(2, 400));
  lin.integrate(ri(3, 800));
  lin.integrate(ri(4, 600));
  const auto targets = lin.introduction_targets();
  ASSERT_EQ(targets.size(), 2u);
  std::map<ProcessId, bool> t;
  for (const RefInfo& r : targets) t[r.ref.id()] = true;
  EXPECT_TRUE(t[2]);  // closest left (400)
  EXPECT_TRUE(t[4]);  // closest right (600)
}

TEST(LinearizationUnit, EmptyAndSingleSideNoSends) {
  Linearization lin;
  lin.bind(Ref::make(0), 500);
  CaptureOverlayCtx ctx(Ref::make(0), 500);
  lin.maintain(ctx);  // empty: nothing
  EXPECT_TRUE(ctx.sends.empty());
  lin.integrate(ri(1, 100));
  lin.maintain(ctx);  // single neighbor: kept, nothing sent
  EXPECT_TRUE(ctx.sends.empty());
  EXPECT_TRUE(lin.stored().size() == 1);
}

// --- Star ---

TEST(StarUnit, NonCenterDelegatesEverythingToMin) {
  StarOverlay star;
  star.bind(Ref::make(0), 500);
  CaptureOverlayCtx ctx(Ref::make(0), 500);
  star.integrate(ri(1, 100));  // believed center
  star.integrate(ri(2, 300));
  star.integrate(ri(3, 900));
  star.maintain(ctx);
  EXPECT_EQ(stored_ids(star).size(), 1u);
  EXPECT_TRUE(stored_ids(star).count(1));
  ASSERT_EQ(ctx.sends.size(), 2u);
  for (const auto& s : ctx.sends) EXPECT_EQ(s.dest, Ref::make(1));
}

TEST(StarUnit, BelievedCenterKeepsAll) {
  StarOverlay star;
  star.bind(Ref::make(0), 10);  // smaller than everyone it knows
  CaptureOverlayCtx ctx(Ref::make(0), 10);
  star.integrate(ri(1, 100));
  star.integrate(ri(2, 300));
  star.maintain(ctx);
  EXPECT_TRUE(ctx.sends.empty());
  EXPECT_EQ(star.stored().size(), 2u);
  // The center introduces itself to everyone.
  EXPECT_EQ(star.introduction_targets().size(), 2u);
}

TEST(StarUnit, LeafIntroducesOnlyToCenter) {
  StarOverlay star;
  star.bind(Ref::make(0), 500);
  star.integrate(ri(1, 100));
  star.integrate(ri(2, 300));
  const auto targets = star.introduction_targets();
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(targets[0].ref, Ref::make(1));
}

// --- Clique ---

TEST(CliqueUnit, IntroducesAllOrderedPairs) {
  CliqueOverlay clique;
  clique.bind(Ref::make(0), 1);
  CaptureOverlayCtx ctx(Ref::make(0), 1);
  clique.integrate(ri(1, 10));
  clique.integrate(ri(2, 20));
  clique.integrate(ri(3, 30));
  clique.maintain(ctx);
  // 3 neighbors -> 3*2 ordered pairs.
  EXPECT_EQ(ctx.sends.size(), 6u);
  // Nothing is ever deleted.
  EXPECT_EQ(clique.stored().size(), 3u);
  // Every send keeps the copy (introduction): carried ref still stored.
  for (const auto& s : ctx.sends) {
    EXPECT_TRUE(stored_ids(clique).count(s.refs[0].ref.id()));
  }
}

TEST(CliqueUnit, DefaultMessageIntegrates) {
  CliqueOverlay clique;
  clique.bind(Ref::make(0), 1);
  CaptureOverlayCtx ctx(Ref::make(0), 1);
  clique.on_overlay_message(ctx, kTagDeliverRef, {ri(7, 70), ri(8, 80)});
  EXPECT_EQ(clique.stored().size(), 2u);
}

// --- common storage behavior through the base class ---

TEST(OverlayUnit, IntegrateFusesAndUpdatesMode) {
  Linearization lin;
  lin.bind(Ref::make(0), 500);
  lin.integrate(ri(1, 100));
  RefInfo again = ri(1, 100);
  again.mode = ModeInfo::Leaving;
  lin.integrate(again);
  ASSERT_EQ(lin.stored().size(), 1u);
  EXPECT_EQ(lin.stored()[0].mode, ModeInfo::Leaving);
}

TEST(OverlayUnit, SelfReferenceNeverStored) {
  StarOverlay star;
  star.bind(Ref::make(3), 30);
  star.integrate(RefInfo{Ref::make(3), ModeInfo::Staying, 30});
  EXPECT_TRUE(star.empty());
}

}  // namespace
}  // namespace fdp
