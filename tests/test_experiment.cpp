#include "analysis/experiment.hpp"

#include <gtest/gtest.h>

#include "analysis/metrics.hpp"

namespace fdp {
namespace {

TEST(Experiment, SchedulerFactoriesAndNames) {
  for (const char* name : {"random", "roundrobin", "rounds", "adversarial"}) {
    const SchedulerKind k = scheduler_by_name(name);
    EXPECT_STREQ(to_string(k), name);
    const SchedulerSpec spec = SchedulerSpec::of(k);
    EXPECT_NE(spec.make(), nullptr);
    EXPECT_STREQ(spec.name(), name);
  }
}

TEST(ExperimentDeath, UnknownSchedulerAborts) {
  EXPECT_DEATH((void)scheduler_by_name("chaotic"), "unknown scheduler");
}

TEST(Experiment, RunReportsCounters) {
  ScenarioConfig cfg;
  cfg.n = 10;
  cfg.topology = "gnp";
  cfg.leave_fraction = 0.3;
  cfg.invalid_mode_prob = 0.5;
  cfg.seed = 3;
  Scenario sc = build_departure_scenario(cfg);
  ExperimentSpec opt;
  opt.max_steps(300'000);
  const RunResult r = run_to_legitimacy(sc, opt);
  ASSERT_TRUE(r.reached_legitimate) << r.failure;
  EXPECT_GT(r.steps, 0u);
  EXPECT_GT(r.sends, 0u);
  EXPECT_EQ(r.exits, sc.leaving_count);
  EXPECT_GT(r.phi_initial, 0u);
}

TEST(Experiment, RoundsSchedulerReportsRounds) {
  ScenarioConfig cfg;
  cfg.n = 8;
  cfg.topology = "line";
  cfg.leave_fraction = 0.25;
  cfg.seed = 5;
  Scenario sc = build_departure_scenario(cfg);
  ExperimentSpec opt;
  opt.max_steps(200'000);
  opt.scheduler(SchedulerSpec::of(SchedulerKind::Rounds));
  const RunResult r = run_to_legitimacy(sc, opt);
  ASSERT_TRUE(r.reached_legitimate) << r.failure;
  EXPECT_GT(r.rounds, 0u);
}

TEST(Experiment, MaxStepsRespectedOnStalledRun) {
  ScenarioConfig cfg;
  cfg.n = 8;
  cfg.topology = "line";
  cfg.leave_fraction = 0.5;
  cfg.oracle = "always-false";  // liveness removed: can never finish
  cfg.seed = 7;
  Scenario sc = build_departure_scenario(cfg);
  ExperimentSpec opt;
  opt.max_steps(5'000);
  const RunResult r = run_to_legitimacy(sc, opt);
  EXPECT_FALSE(r.reached_legitimate);
  EXPECT_LE(r.steps, opt.max_steps() + opt.check_every());
  EXPECT_FALSE(r.failure.empty());
}

TEST(Stat, MeanSdMinMax) {
  Stat s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.sd(), 1.29099, 1e-4);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(Stat, EmptyIsZero) {
  Stat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.sd(), 0.0);
}

TEST(Samples, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.median(), 50.5, 1.0);  // nearest-rank on an even count
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_NEAR(s.percentile(0.9), 90.0, 1.0);
  EXPECT_NEAR(s.mean(), 50.5, 1e-9);
}

}  // namespace
}  // namespace fdp
