// Unit tests for the two-level skip list overlay: the deterministic level
// coin, transit routing, level-1 slots and span healing.
#include "overlay/skiplist.hpp"

#include <gtest/gtest.h>

#include <map>

#include "test_support.hpp"

namespace fdp {
namespace {

using testsupport::CaptureOverlayCtx;

// Keys with known tallness (popcount parity): even popcount = tall.
constexpr std::uint64_t kTall1 = 0b11;     // popcount 2 -> tall
constexpr std::uint64_t kTall2 = 0b1100;   // popcount 2 -> tall
constexpr std::uint64_t kTall3 = 0b110000; // popcount 2 -> tall
constexpr std::uint64_t kShort1 = 0b100;   // popcount 1 -> short
constexpr std::uint64_t kShort2 = 0b10000; // popcount 1 -> short

RefInfo ri(ProcessId id, std::uint64_t key) {
  return RefInfo{Ref::make(id), ModeInfo::Staying, key};
}

TEST(SkipList, LevelCoinIsPopcountParity) {
  EXPECT_TRUE(skip_is_tall(kTall1));
  EXPECT_TRUE(skip_is_tall(kTall2));
  EXPECT_FALSE(skip_is_tall(kShort1));
  EXPECT_FALSE(skip_is_tall(kShort2));
}

TEST(SkipList, ShortForwardsTransitWithoutStoring) {
  SkipListOverlay sl;
  sl.bind(Ref::make(0), kShort1);  // key 4, short
  CaptureOverlayCtx ctx(Ref::make(0), kShort1);
  sl.integrate(ri(1, kTall1));   // left neighbor  (key 3)
  sl.integrate(ri(2, kShort2));  // right neighbor (key 16)
  // A tall ref travelling leftward must be forwarded to the closest left
  // neighbor, not stored.
  const std::size_t before = sl.stored().size();
  sl.on_overlay_message(ctx, kTagTallLeft, {ri(9, kTall3)});
  EXPECT_EQ(sl.stored().size(), before);
  ASSERT_EQ(ctx.sends.size(), 1u);
  EXPECT_EQ(ctx.sends[0].dest, Ref::make(1));
  EXPECT_EQ(ctx.sends[0].tag, kTagTallLeft);
}

TEST(SkipList, ShortDeadEndReturnsToOwner) {
  SkipListOverlay sl;
  sl.bind(Ref::make(0), kShort1);
  CaptureOverlayCtx ctx(Ref::make(0), kShort1);
  // No left neighbor at all: the leftward transit has nowhere to go.
  sl.on_overlay_message(ctx, kTagTallLeft, {ri(9, kTall3)});
  EXPECT_TRUE(sl.empty());
  ASSERT_EQ(ctx.sends.size(), 1u);
  EXPECT_EQ(ctx.sends[0].dest, Ref::make(9));  // back to the owner
  EXPECT_EQ(ctx.sends[0].tag, kTagDeliverRef);
}

TEST(SkipList, TallSlotsTransitCandidate) {
  SkipListOverlay sl;
  sl.bind(Ref::make(0), kTall2);  // key 12, tall
  CaptureOverlayCtx ctx(Ref::make(0), kTall2);
  // A leftward-travelling candidate has a LARGER key (origin to our
  // right): it becomes the level-1 right neighbor.
  sl.on_overlay_message(ctx, kTagTallLeft, {ri(9, kTall3)});
  ASSERT_EQ(sl.stored().size(), 1u);
  EXPECT_EQ(sl.stored()[0].ref, Ref::make(9));
  // Its introduction targets include the slot.
  bool in_targets = false;
  for (const RefInfo& r : sl.introduction_targets())
    if (r.ref == Ref::make(9)) in_targets = true;
  EXPECT_TRUE(in_targets);
}

TEST(SkipList, CloserCandidateDisplacesFarther) {
  SkipListOverlay sl;
  sl.bind(Ref::make(0), kTall1);  // key 3
  CaptureOverlayCtx ctx(Ref::make(0), kTall1);
  sl.on_overlay_message(ctx, kTagTallLeft, {ri(9, kTall3)});  // key 48
  sl.on_overlay_message(ctx, kTagTallLeft, {ri(8, kTall2)});  // key 12: closer
  // Both retained: 8 in the slot, 9 back in level-0 storage.
  std::map<ProcessId, bool> ids;
  for (const RefInfo& r : sl.stored()) ids[r.ref.id()] = true;
  EXPECT_TRUE(ids[8]);
  EXPECT_TRUE(ids[9]);
}

TEST(SkipList, SpanHealingIntroducesCandidateToInBetween) {
  SkipListOverlay sl;
  sl.bind(Ref::make(0), kTall1);  // key 3, tall
  CaptureOverlayCtx ctx(Ref::make(0), kTall1);
  sl.integrate(ri(4, kShort1));  // key 4: strictly between 3 and 48
  sl.on_overlay_message(ctx, kTagTallLeft, {ri(9, kTall3)});  // key 48
  // The in-between short must be introduced to the candidate.
  bool healed = false;
  for (const auto& s : ctx.sends) {
    if (s.dest == Ref::make(4) && s.tag == kTagDeliverRef &&
        s.refs.size() == 1 && s.refs[0].ref == Ref::make(9))
      healed = true;
  }
  EXPECT_TRUE(healed);
}

TEST(SkipList, TallToTallIntegrationGoesToSlot) {
  SkipListOverlay sl;
  sl.bind(Ref::make(0), kTall2);  // key 12
  // A present() from a tall process lands in the slot, not level 0.
  sl.integrate(ri(1, kTall1));  // key 3 (left, tall)
  ASSERT_EQ(sl.stored().size(), 1u);
  // Level-0 storage must stay empty: maintain() delegates nothing.
  CaptureOverlayCtx ctx(Ref::make(0), kTall2);
  sl.maintain(ctx);
  for (const auto& s : ctx.sends) EXPECT_EQ(s.tag, kTagTallLeft);
}

TEST(SkipList, ShortIntegratesTallIntoLevelZero) {
  SkipListOverlay sl;
  sl.bind(Ref::make(0), kShort1);
  sl.integrate(ri(1, kTall1));
  EXPECT_EQ(sl.stored().size(), 1u);
  // For a short node everything is level-0: delegation applies normally.
}

TEST(SkipList, DelegationFlowsThroughSlotWaypoints) {
  // Tall node with slot-right v (key 12) and a store ref w beyond it
  // (key 48): w must be delegated TO v, draining level 0.
  SkipListOverlay sl;
  sl.bind(Ref::make(0), kTall1);  // key 3
  CaptureOverlayCtx ctx(Ref::make(0), kTall1);
  sl.on_overlay_message(ctx, kTagTallLeft, {ri(5, kTall2)});  // slot: key 12
  ctx.sends.clear();
  sl.integrate(ri(6, kShort2));  // key 16 -- store, beyond the slot
  sl.maintain(ctx);
  bool delegated = false;
  for (const auto& s : ctx.sends) {
    if (s.dest == Ref::make(5) && s.tag == kTagDeliverRef &&
        s.refs.size() == 1 && s.refs[0].ref == Ref::make(6))
      delegated = true;
  }
  EXPECT_TRUE(delegated);
  // w left the base storage (conserved inside the send).
  for (const RefInfo& r : sl.stored()) EXPECT_NE(r.ref, Ref::make(6));
}

TEST(SkipList, RemoveAndTakeAllCoverSlots) {
  SkipListOverlay sl;
  sl.bind(Ref::make(0), kTall1);
  CaptureOverlayCtx ctx(Ref::make(0), kTall1);
  sl.on_overlay_message(ctx, kTagTallLeft, {ri(9, kTall3)});
  sl.integrate(ri(4, kShort1));
  EXPECT_TRUE(sl.remove(Ref::make(9)));
  EXPECT_FALSE(sl.remove(Ref::make(9)));
  sl.on_overlay_message(ctx, kTagTallLeft, {ri(9, kTall3)});
  const auto all = sl.take_all();
  EXPECT_EQ(all.size(), 2u);
  EXPECT_TRUE(sl.empty());
}

TEST(SkipList, ShortWithCorruptedSlotEvictsOnMaintain) {
  // A corrupted state could hand a SHORT process slot content via
  // restore-like mutation; directly exercise sanitize via maintain after
  // forcing the slot through the tall-integration path is impossible for
  // a short node, so instead check a tall node's wrong-side eviction.
  SkipListOverlay sl;
  sl.bind(Ref::make(0), kTall2);  // key 12
  CaptureOverlayCtx ctx(Ref::make(0), kTall2);
  // Right slot gets a candidate... which is actually on the LEFT side
  // (inconsistent direction message): it must go to level 0 instead.
  sl.on_overlay_message(ctx, kTagTallLeft, {ri(1, kTall1)});  // key 3 < 12
  // Stored as plain level-0 info (inconsistent direction).
  ASSERT_EQ(sl.stored().size(), 1u);
  sl.maintain(ctx);  // must not crash; ref may be slotted/kept
  EXPECT_GE(sl.stored().size(), 1u);
}

}  // namespace
}  // namespace fdp
