// Bounded model checking: exhaustive verification of the departure
// protocol over ALL schedules of small worlds (see analysis/modelcheck.hpp
// for exactly what is verified).
#include "analysis/modelcheck.hpp"

#include <gtest/gtest.h>

#include "core/departure_process.hpp"
#include "core/oracle.hpp"

namespace fdp {
namespace {

/// Factory helpers: tiny hand-built worlds. `spec` gives each process's
/// mode; `edges` the initial explicit references (with valid knowledge
/// unless flipped by `lie`).
struct Edge {
  ProcessId from, to;
  bool lie = false;
};

ModelChecker::Factory tiny_world(std::vector<Mode> modes,
                                 std::vector<Edge> edges,
                                 DeparturePolicy policy =
                                     DeparturePolicy::ExitWithOracle) {
  return [modes, edges, policy]() {
    auto w = std::make_unique<World>(1);
    std::vector<Ref> refs;
    for (std::size_t i = 0; i < modes.size(); ++i)
      refs.push_back(
          w->spawn<DepartureProcess>(modes[i], 100 + i * 10, policy));
    for (const Edge& e : edges) {
      const Mode actual = modes[e.to];
      const ModeInfo info =
          e.lie ? (actual == Mode::Leaving ? ModeInfo::Staying
                                           : ModeInfo::Leaving)
                : to_info(actual);
      w->process_as<DepartureProcess>(e.from).nbrs_mut().insert(
          RefInfo{refs[e.to], info, w->process(e.to).key()});
    }
    w->set_oracle(make_single_oracle());
    return w;
  };
}

TEST(ModelCheck, PairStayLeave) {
  // 0 staying <-> 1 leaving, valid knowledge.
  ModelChecker mc(tiny_world({Mode::Staying, Mode::Leaving},
                             {{0, 1}, {1, 0}}));
  const ModelCheckResult r = mc.run();
  EXPECT_EQ(r.safety_violations, 0u) << r.first_violation;
  EXPECT_EQ(r.phi_increases, 0u) << r.first_violation;
  EXPECT_EQ(r.stuck_states, 0u) << r.first_violation;
  EXPECT_GT(r.legitimate_states, 0u);
  EXPECT_GT(r.states, 10u);
}

TEST(ModelCheck, PairWithInvalidKnowledge) {
  // The stayer believes the leaver is staying and vice versa: the
  // self-stabilization path through knowledge repair is fully explored.
  ModelChecker mc(tiny_world({Mode::Staying, Mode::Leaving},
                             {{0, 1, /*lie=*/true}, {1, 0, /*lie=*/true}}));
  const ModelCheckResult r = mc.run();
  EXPECT_EQ(r.safety_violations, 0u) << r.first_violation;
  EXPECT_EQ(r.phi_increases, 0u) << r.first_violation;
  EXPECT_EQ(r.stuck_states, 0u) << r.first_violation;
}

TEST(ModelCheck, LineWithMiddleLeaving) {
  // 0 staying — 1 leaving — 2 staying: the leaver is a cut vertex; every
  // schedule must splice the stayers before the exit.
  ModelChecker mc(tiny_world({Mode::Staying, Mode::Leaving, Mode::Staying},
                             {{0, 1}, {1, 0}, {1, 2}, {2, 1}}));
  ModelCheckConfig cfg;
  const ModelCheckResult r = mc.run();
  EXPECT_EQ(r.safety_violations, 0u) << r.first_violation;
  EXPECT_EQ(r.phi_increases, 0u) << r.first_violation;
  EXPECT_EQ(r.stuck_states, 0u) << r.first_violation;
  EXPECT_GT(r.legitimate_states, 0u);
}

TEST(ModelCheck, TwoLeaversOneStayer) {
  ModelChecker mc(tiny_world({Mode::Leaving, Mode::Staying, Mode::Leaving},
                             {{0, 1}, {1, 0}, {2, 1}, {1, 2}}));
  const ModelCheckResult r = mc.run();
  EXPECT_EQ(r.safety_violations, 0u) << r.first_violation;
  EXPECT_EQ(r.stuck_states, 0u) << r.first_violation;
}

TEST(ModelCheck, AdjacentLeaversWithLies) {
  // Two adjacent leavers, one stayer, with flipped beliefs on the
  // leaver-leaver edge: the trickiest tiny configuration.
  ModelChecker mc(tiny_world(
      {Mode::Leaving, Mode::Leaving, Mode::Staying},
      {{0, 1, true}, {1, 0, true}, {1, 2}, {2, 1}, {0, 2}}));
  const ModelCheckResult r = mc.run();
  EXPECT_EQ(r.safety_violations, 0u) << r.first_violation;
  EXPECT_EQ(r.phi_increases, 0u) << r.first_violation;
  EXPECT_EQ(r.stuck_states, 0u) << r.first_violation;
}

TEST(ModelCheck, FspPairReachesHibernation) {
  ModelChecker mc(tiny_world({Mode::Staying, Mode::Leaving},
                             {{0, 1}, {1, 0}},
                             DeparturePolicy::Sleep),
                  ModelCheckConfig{250'000, 6, Exclusion::Hibernating});
  const ModelCheckResult r = mc.run();
  EXPECT_EQ(r.safety_violations, 0u) << r.first_violation;
  EXPECT_EQ(r.stuck_states, 0u) << r.first_violation;
  EXPECT_GT(r.legitimate_states, 0u);
}

TEST(ModelCheck, DetectsIncidentZeroDeadlock) {
  // Negative liveness: under INCIDENT(0) two mutually referencing leaving
  // processes can never reach degree zero — neither ever exits, so no
  // legitimate state exists at all and the checker's bounded-progress
  // analysis must expose stuck states. (This is exactly why the paper
  // does not use the degree-0 oracle.)
  auto factory = [] {
    auto w = std::make_unique<World>(1);
    const Ref a = w->spawn<DepartureProcess>(Mode::Leaving, 100);
    const Ref b = w->spawn<DepartureProcess>(Mode::Leaving, 200);
    w->process_as<DepartureProcess>(0).nbrs_mut().insert(
        RefInfo{b, ModeInfo::Leaving, 200});
    w->process_as<DepartureProcess>(1).nbrs_mut().insert(
        RefInfo{a, ModeInfo::Leaving, 100});
    w->set_oracle(make_incident_oracle(0));
    return w;
  };
  ModelChecker mc(factory);
  const ModelCheckResult r = mc.run();
  EXPECT_EQ(r.legitimate_states, 0u);
  EXPECT_GT(r.stuck_states, 0u);  // safe but not live
  // Control: the same world under SINGLE has no stuck states (the pair
  // resolves: one of them exits with its single neighbor).
  auto factory_single = [&factory] {
    auto w = factory();
    w->set_oracle(make_single_oracle());
    return w;
  };
  ModelChecker mc2(factory_single);
  const ModelCheckResult r2 = mc2.run();
  EXPECT_EQ(r2.stuck_states, 0u);
  EXPECT_GT(r2.legitimate_states, 0u);
}

TEST(ModelCheck, DetectsUnsafeOracle) {
  // Sanity of the checker itself: with ALWAYS(true) the middle of a line
  // can exit before splicing — the checker must find the violation.
  auto factory = [] {
    auto w = std::make_unique<World>(1);
    std::vector<Ref> refs;
    const Mode modes[3] = {Mode::Staying, Mode::Leaving, Mode::Staying};
    for (int i = 0; i < 3; ++i)
      refs.push_back(w->spawn<DepartureProcess>(modes[i], 100 + i * 10));
    auto link = [&](ProcessId a, ProcessId b) {
      w->process_as<DepartureProcess>(a).nbrs_mut().insert(
          RefInfo{refs[b], to_info(modes[b]), w->process(b).key()});
    };
    link(0, 1);
    link(1, 0);
    link(1, 2);
    link(2, 1);
    w->set_oracle(make_always_oracle(true));
    return w;
  };
  ModelChecker mc(factory);
  const ModelCheckResult r = mc.run();
  EXPECT_GT(r.safety_violations, 0u);
}

TEST(ModelCheck, CanonicalizationMergesEquivalentStates) {
  // A world whose channel holds two identical messages must not double
  // the state space: delivering either is the same transition.
  auto factory = [] {
    auto w = std::make_unique<World>(1);
    const Ref a = w->spawn<DepartureProcess>(Mode::Staying, 100);
    const Ref b = w->spawn<DepartureProcess>(Mode::Staying, 200);
    (void)a;
    w->post(b, Message::present(RefInfo{a, ModeInfo::Staying, 100}));
    w->post(b, Message::present(RefInfo{a, ModeInfo::Staying, 100}));
    w->set_oracle(make_single_oracle());
    return w;
  };
  ModelChecker mc(factory);
  const ModelCheckResult r = mc.run();
  EXPECT_EQ(r.safety_violations, 0u);
  // All-staying worlds are legitimate from the start.
  EXPECT_GT(r.legitimate_states, 0u);
  EXPECT_EQ(r.stuck_states, 0u);
}

TEST(ModelCheck, InflightBoundTruncatesNotCrashes) {
  ModelChecker mc(tiny_world({Mode::Staying, Mode::Staying, Mode::Staying},
                             {{0, 1}, {1, 2}, {2, 0}}),
                  ModelCheckConfig{5'000, 3, Exclusion::Gone});
  const ModelCheckResult r = mc.run();
  EXPECT_GT(r.states, 0u);
  EXPECT_EQ(r.safety_violations, 0u);
}

}  // namespace
}  // namespace fdp
