// Reproducibility: identical seeds produce identical runs, across every
// scenario family and scheduler. This is what makes every number in
// EXPERIMENTS.md regenerable.
//
// The GoldenTrace suite goes further: it pins the *exact* action sequence
// of each scheduler on a fixed scenario to a baked-in hash. Same-seed
// reproducibility would not notice a kernel change that perturbs every run
// the same way; the golden hashes do. They were captured before the
// index-based kernel rewrite and must survive it bit for bit (the rewrite
// changes data structures, not decisions).
#include <gtest/gtest.h>

#include <memory>

#include "analysis/experiment.hpp"
#include "core/potential.hpp"
#include "sim/chaos.hpp"

namespace fdp {
namespace {

struct Fingerprint {
  std::uint64_t steps, sends, exits, sleeps, phi0, phi1;
  bool legit;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

Fingerprint run_once(const ScenarioConfig& cfg, SchedulerKind sk,
                     bool framework, Exclusion excl) {
  Scenario sc = framework ? build_framework_scenario(cfg, "linearization")
                          : build_departure_scenario(cfg);
  ExperimentSpec opt;
  opt.max_steps(250'000);
  opt.scheduler(SchedulerSpec::of(sk));
  const RunResult r = run_to_legitimacy(sc, opt.exclusion(excl));
  return Fingerprint{r.steps, r.sends,       r.exits, r.sleeps,
                     r.phi_initial, r.phi_final, r.reached_legitimate};
}

class DeterminismSweep
    : public testing::TestWithParam<std::tuple<SchedulerKind, bool>> {};

TEST_P(DeterminismSweep, IdenticalSeedsIdenticalRuns) {
  const auto [sk, framework] = GetParam();
  ScenarioConfig cfg;
  cfg.n = 10;
  cfg.topology = "wild";
  cfg.leave_fraction = 0.3;
  cfg.invalid_mode_prob = 0.3;
  cfg.inflight_per_node = 1.0;
  cfg.seed = 1234;
  const Fingerprint a = run_once(cfg, sk, framework, Exclusion::Gone);
  const Fingerprint b = run_once(cfg, sk, framework, Exclusion::Gone);
  EXPECT_TRUE(a == b);
  cfg.seed = 1235;
  const Fingerprint c = run_once(cfg, sk, framework, Exclusion::Gone);
  EXPECT_FALSE(a == c);  // different seed, different trace (w.h.p.)
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DeterminismSweep,
    testing::Combine(testing::Values(SchedulerKind::Random,
                                     SchedulerKind::RoundRobin,
                                     SchedulerKind::Rounds,
                                     SchedulerKind::Adversarial),
                     testing::Bool()));

// FNV-1a over the executed action stream: every decision a scheduler makes
// feeds the hash, so two runs collide only if they took identical actions.
class TraceHasher final : public Observer {
 public:
  void on_action(const Substrate& world, const ActionRecord& rec) override {
    (void)world;
    mix(static_cast<std::uint64_t>(rec.kind));
    mix(rec.actor);
    mix(rec.consumed ? rec.consumed->seq : 0);
    mix(rec.sent.size());
    mix((rec.exited ? 1u : 0u) | (rec.slept ? 2u : 0u) | (rec.woke ? 4u : 0u));
  }
  [[nodiscard]] std::uint64_t hash() const { return h_; }

 private:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xff;
      h_ *= 0x100000001b3ULL;
    }
  }
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

// A scenario that exercises every life state and message path: asleep
// starts, leavers, invalid modes, anchors, initial in-flight traffic.
ScenarioConfig golden_config() {
  ScenarioConfig cfg;
  cfg.n = 24;
  cfg.topology = "wild";
  cfg.leave_fraction = 0.3;
  cfg.invalid_mode_prob = 0.3;
  cfg.random_anchor_prob = 0.2;
  cfg.inflight_per_node = 1.0;
  cfg.initial_asleep_prob = 0.2;
  cfg.seed = 4242;
  return cfg;
}

std::uint64_t golden_trace(std::unique_ptr<Scheduler> sched,
                           ChaosScheduler* chaos_bind = nullptr) {
  Scenario sc = build_departure_scenario(golden_config());
  if (chaos_bind != nullptr) chaos_bind->bind(sc.world.get());
  TraceHasher hasher;
  sc.world->add_observer(&hasher);
  for (int i = 0; i < 20'000; ++i)
    if (!sc.world->step(*sched)) break;
  EXPECT_EQ(phi(*sc.world), 0u);  // converged: Φ drained in every config
  return hasher.hash();
}

TEST(GoldenTrace, RandomScheduler) {
  EXPECT_EQ(golden_trace(SchedulerSpec::of(SchedulerKind::Random).make()),
            0x09162da6df64f356ULL);
}

TEST(GoldenTrace, RoundRobinScheduler) {
  EXPECT_EQ(golden_trace(SchedulerSpec::of(SchedulerKind::RoundRobin).make()),
            0x67c4e241927a7b23ULL);
}

TEST(GoldenTrace, RoundScheduler) {
  EXPECT_EQ(golden_trace(SchedulerSpec::of(SchedulerKind::Rounds).make()),
            0x539cbb7b00397967ULL);
}

TEST(GoldenTrace, AdversarialScheduler) {
  // This hash is from AFTER the timeout-cursor fix: the scheduler now
  // round-robins timeouts over the stable ProcessId space instead of an
  // index into a freshly built awake vector (which drifted whenever
  // membership changed, starving processes under heavy churn). Delivery
  // decisions are unchanged; timeout order is intentionally different
  // from the pre-fix kernel.
  EXPECT_EQ(golden_trace(SchedulerSpec::of(SchedulerKind::Adversarial).make()),
            0x6cd1b25d3101706aULL);
}

TEST(GoldenTrace, ChaosOverRandom) {
  auto chaos = std::make_unique<ChaosScheduler>(
      SchedulerSpec::of(SchedulerKind::Random).make(), /*p_duplicate=*/0.10,
      /*p_drop=*/0.05, /*seed=*/77);
  ChaosScheduler* raw = chaos.get();
  EXPECT_EQ(golden_trace(std::move(chaos), raw), 0xab5c80ab4b67ce60ULL);
}

TEST(GoldenTrace, ChaosOverRounds) {
  // Regression for the RoundScheduler plan-invalidation path: chaos drops
  // messages that are already in the current round's plan, so next() must
  // skip entries whose message vanished from under it (the old comment
  // claimed this "cannot happen").
  auto chaos = std::make_unique<ChaosScheduler>(
      SchedulerSpec::of(SchedulerKind::Rounds).make(), /*p_duplicate=*/0.10,
      /*p_drop=*/0.05, /*seed=*/77);
  ChaosScheduler* raw = chaos.get();
  EXPECT_EQ(golden_trace(std::move(chaos), raw), 0xe3d27894bea06050ULL);
}

TEST(Determinism, FspRunsReproduce) {
  ScenarioConfig cfg;
  cfg.n = 10;
  cfg.topology = "gnp";
  cfg.leave_fraction = 0.4;
  cfg.policy = DeparturePolicy::Sleep;
  cfg.seed = 999;
  const Fingerprint a =
      run_once(cfg, SchedulerKind::Random, false, Exclusion::Hibernating);
  const Fingerprint b =
      run_once(cfg, SchedulerKind::Random, false, Exclusion::Hibernating);
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace fdp
