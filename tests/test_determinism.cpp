// Reproducibility: identical seeds produce identical runs, across every
// scenario family and scheduler. This is what makes every number in
// EXPERIMENTS.md regenerable.
#include <gtest/gtest.h>

#include "analysis/experiment.hpp"

namespace fdp {
namespace {

struct Fingerprint {
  std::uint64_t steps, sends, exits, sleeps, phi0, phi1;
  bool legit;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

Fingerprint run_once(const ScenarioConfig& cfg, SchedulerKind sk,
                     bool framework, Exclusion excl) {
  Scenario sc = framework ? build_framework_scenario(cfg, "linearization")
                          : build_departure_scenario(cfg);
  ExperimentSpec opt;
  opt.max_steps(250'000);
  opt.scheduler(SchedulerSpec::of(sk));
  const RunResult r = run_to_legitimacy(sc, opt.exclusion(excl));
  return Fingerprint{r.steps, r.sends,       r.exits, r.sleeps,
                     r.phi_initial, r.phi_final, r.reached_legitimate};
}

class DeterminismSweep
    : public testing::TestWithParam<std::tuple<SchedulerKind, bool>> {};

TEST_P(DeterminismSweep, IdenticalSeedsIdenticalRuns) {
  const auto [sk, framework] = GetParam();
  ScenarioConfig cfg;
  cfg.n = 10;
  cfg.topology = "wild";
  cfg.leave_fraction = 0.3;
  cfg.invalid_mode_prob = 0.3;
  cfg.inflight_per_node = 1.0;
  cfg.seed = 1234;
  const Fingerprint a = run_once(cfg, sk, framework, Exclusion::Gone);
  const Fingerprint b = run_once(cfg, sk, framework, Exclusion::Gone);
  EXPECT_TRUE(a == b);
  cfg.seed = 1235;
  const Fingerprint c = run_once(cfg, sk, framework, Exclusion::Gone);
  EXPECT_FALSE(a == c);  // different seed, different trace (w.h.p.)
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DeterminismSweep,
    testing::Combine(testing::Values(SchedulerKind::Random,
                                     SchedulerKind::RoundRobin,
                                     SchedulerKind::Rounds,
                                     SchedulerKind::Adversarial),
                     testing::Bool()));

TEST(Determinism, FspRunsReproduce) {
  ScenarioConfig cfg;
  cfg.n = 10;
  cfg.topology = "gnp";
  cfg.leave_fraction = 0.4;
  cfg.policy = DeparturePolicy::Sleep;
  cfg.seed = 999;
  const Fingerprint a =
      run_once(cfg, SchedulerKind::Random, false, Exclusion::Hibernating);
  const Fingerprint b =
      run_once(cfg, SchedulerKind::Random, false, Exclusion::Hibernating);
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace fdp
