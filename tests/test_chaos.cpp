// Fault injection: duplication must be harmless (it only copies
// references); loss breaks the model and the monitors must catch it.
#include "sim/chaos.hpp"

#include <gtest/gtest.h>

#include "analysis/experiment.hpp"
#include "analysis/monitors.hpp"
#include "core/oracle.hpp"

namespace fdp {
namespace {

class DuplicationSweep : public testing::TestWithParam<std::uint64_t> {};

TEST_P(DuplicationSweep, ProtocolToleratesDuplicatedMessages) {
  ScenarioConfig cfg;
  cfg.n = 10;
  cfg.topology = "gnp";
  cfg.leave_fraction = 0.3;
  cfg.invalid_mode_prob = 0.3;
  cfg.seed = GetParam();
  Scenario sc = build_departure_scenario(cfg);

  ChaosScheduler chaos(SchedulerSpec::of(SchedulerKind::Random).make(),
                       /*p_duplicate=*/0.2, /*p_drop=*/0.0,
                       /*seed=*/GetParam() * 97);
  chaos.bind(sc.world.get());

  SafetyMonitor safety(*sc.world, 1);
  sc.world->add_observer(&safety);
  LegitimacyChecker checker(*sc.world, Exclusion::Gone);

  bool legit = false;
  for (int block = 0; block < 4000 && !legit; ++block) {
    for (int i = 0; i < 100; ++i) (void)sc.world->step(chaos);
    legit = all_leaving_gone(*sc.world) && checker.legitimate(*sc.world);
  }
  EXPECT_TRUE(legit);
  EXPECT_TRUE(safety.ok());
  EXPECT_GT(chaos.duplicated(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DuplicationSweep,
                         testing::Range<std::uint64_t>(1, 9));

TEST(Chaos, MessageLossIsDetectedByTheMonitors) {
  // Drop messages aggressively on a line where every leaver is a cut
  // vertex: destroyed references eventually disconnect someone, and the
  // safety monitor (or a failed run) must notice. This is negative
  // testing OF THE INSTRUMENTATION, not of the protocol — the model
  // explicitly promises loss-free channels.
  bool detected = false;
  for (std::uint64_t seed = 1; seed <= 12 && !detected; ++seed) {
    ScenarioConfig cfg;
    cfg.n = 10;
    cfg.topology = "line";
    cfg.leave_fraction = 0.4;
    cfg.seed = seed;
    Scenario sc = build_departure_scenario(cfg);

    ChaosScheduler chaos(SchedulerSpec::of(SchedulerKind::Random).make(), 0.0,
                         /*p_drop=*/0.3, seed * 131);
    chaos.bind(sc.world.get());
    SafetyMonitor safety(*sc.world, 1);
    sc.world->add_observer(&safety);
    LegitimacyChecker checker(*sc.world, Exclusion::Gone);
    for (int i = 0; i < 30'000; ++i) (void)sc.world->step(chaos);
    const bool legit =
        all_leaving_gone(*sc.world) && checker.legitimate(*sc.world);
    if (!safety.ok() || !legit) detected = true;
  }
  EXPECT_TRUE(detected);
}

TEST(Chaos, DropAndDuplicateCountersWork) {
  ScenarioConfig cfg;
  cfg.n = 6;
  cfg.topology = "ring";
  cfg.leave_fraction = 0.0;
  cfg.seed = 2;
  Scenario sc = build_departure_scenario(cfg);
  ChaosScheduler chaos(SchedulerSpec::of(SchedulerKind::Random).make(), 0.5, 0.2, 7);
  chaos.bind(sc.world.get());
  for (int i = 0; i < 5'000; ++i) (void)sc.world->step(chaos);
  EXPECT_GT(chaos.duplicated(), 0u);
  EXPECT_GT(chaos.dropped(), 0u);
}

TEST(ChaosDeathTest, NextWithoutBindDies) {
  // Regression for the bind() footgun: an unbound ChaosScheduler used to
  // be constructible and steppable, crashing deep inside next(). It must
  // fail loudly, naming the missing call.
  ChaosScheduler chaos(SchedulerSpec::of(SchedulerKind::Random).make(), 0.2, 0.0, 7);
  ScenarioConfig cfg;
  cfg.n = 6;
  cfg.topology = "ring";
  cfg.seed = 3;
  Scenario sc = build_departure_scenario(cfg);
  EXPECT_DEATH((void)sc.world->step(chaos), "bind");
}

TEST(ChaosDeathTest, NextOnDifferentWorldDies) {
  ChaosScheduler chaos(SchedulerSpec::of(SchedulerKind::Random).make(), 0.2, 0.0, 7);
  ScenarioConfig cfg;
  cfg.n = 6;
  cfg.topology = "ring";
  cfg.seed = 3;
  Scenario bound = build_departure_scenario(cfg);
  chaos.bind(bound.world.get());
  cfg.seed = 4;
  Scenario other = build_departure_scenario(cfg);
  EXPECT_DEATH((void)other.world->step(chaos), "different world");
}

// The k-parameterized oracles keep internal per-process state (QUIET's
// consecutive-call counter) or read channel occupancy (INCIDENT); a
// duplication storm attacks exactly those inputs. Convergence and safety
// must hold for both, like the SINGLE runs above.
class StormOracleSweep
    : public testing::TestWithParam<std::tuple<const char*, std::uint64_t>> {};

TEST_P(StormOracleSweep, ParameterizedOraclesSurviveDuplicationStorms) {
  const auto [oracle, seed] = GetParam();
  ScenarioConfig cfg;
  cfg.n = 10;
  cfg.topology = "gnp";
  cfg.leave_fraction = 0.3;
  cfg.invalid_mode_prob = 0.3;
  cfg.oracle = oracle;
  cfg.seed = seed;
  Scenario sc = build_departure_scenario(cfg);

  // p_duplicate = 0.5 is a storm: half of all scheduler choices clone a
  // random in-flight message first.
  ChaosScheduler chaos(SchedulerSpec::of(SchedulerKind::Random).make(),
                       /*p_duplicate=*/0.5, /*p_drop=*/0.0, seed * 193);
  chaos.bind(sc.world.get());

  SafetyMonitor safety(*sc.world, 1);
  sc.world->add_observer(&safety);
  LegitimacyChecker checker(*sc.world, Exclusion::Gone);

  bool legit = false;
  for (int block = 0; block < 8000 && !legit; ++block) {
    for (int i = 0; i < 100; ++i) (void)sc.world->step(chaos);
    legit = all_leaving_gone(*sc.world) && checker.legitimate(*sc.world);
  }
  EXPECT_TRUE(legit);
  EXPECT_TRUE(safety.ok());
  EXPECT_GT(chaos.duplicated(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StormOracleSweep,
    testing::Combine(testing::Values("quiet:3", "incident:2"),
                     testing::Range<std::uint64_t>(1, 5)));

TEST(Chaos, WorldDuplicateAndDiscardPrimitives) {
  World w(1);
  const Ref a = w.spawn<DepartureProcess>(Mode::Staying, 1);
  w.post(a, Message::present(RefInfo{a, ModeInfo::Staying, 1}));
  const std::uint64_t seq = w.channel(0).peek(0).seq;
  EXPECT_TRUE(w.duplicate_message(0, seq));
  EXPECT_EQ(w.channel(0).size(), 2u);
  EXPECT_TRUE(w.discard_message(0, seq));
  EXPECT_EQ(w.channel(0).size(), 1u);
  EXPECT_FALSE(w.discard_message(0, seq));       // already gone
  EXPECT_FALSE(w.duplicate_message(0, 999999));  // unknown seq
}

}  // namespace
}  // namespace fdp
