// World::reset(seed) rewinds a world to the just-constructed state while
// keeping every channel arena, index table and scratch buffer at its
// high-water capacity. The contract the ExperimentDriver's per-thread
// world reuse depends on: a reset world is *byte-identical* in behavior to
// a freshly constructed one — same action trace, step for step, under
// every scheduler.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "analysis/experiment.hpp"
#include "analysis/scenario.hpp"
#include "sim/world.hpp"
#include "util/alloc_stats.hpp"

namespace fdp {
namespace {

// FNV-1a over the executed action stream (same mixing as the golden-trace
// suite): two runs collide only if they took identical actions.
class TraceHasher final : public Observer {
 public:
  void on_action(const Substrate& world, const ActionRecord& rec) override {
    (void)world;
    mix(static_cast<std::uint64_t>(rec.kind));
    mix(rec.actor);
    mix(rec.consumed ? rec.consumed->seq : 0);
    mix(rec.sent.size());
    mix((rec.exited ? 1u : 0u) | (rec.slept ? 2u : 0u) | (rec.woke ? 4u : 0u));
  }
  [[nodiscard]] std::uint64_t hash() const { return h_; }

 private:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xff;
      h_ *= 0x100000001b3ULL;
    }
  }
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

ScenarioConfig stress_config(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.n = 18;
  cfg.topology = "wild";
  cfg.leave_fraction = 0.3;
  cfg.invalid_mode_prob = 0.3;
  cfg.random_anchor_prob = 0.2;
  cfg.inflight_per_node = 1.0;
  cfg.initial_asleep_prob = 0.2;
  cfg.seed = seed;
  return cfg;
}

std::uint64_t run_trace(Scenario& sc, SchedulerKind sk, int steps) {
  auto sched = SchedulerSpec::of(sk).make();
  TraceHasher hasher;
  sc.world->add_observer(&hasher);
  for (int i = 0; i < steps; ++i)
    if (!sc.world->step(*sched)) break;
  return hasher.hash();
}

class WorldReset : public testing::TestWithParam<SchedulerKind> {};

// Fresh-built world vs. a world recycled from a *different* trial (other
// seed, dirty channels/indices at arbitrary high-water marks): identical
// action traces.
TEST_P(WorldReset, ReusedWorldTraceMatchesFresh) {
  const SchedulerKind sk = GetParam();

  Scenario fresh = build_departure_scenario(stress_config(777));
  const std::uint64_t fresh_hash = run_trace(fresh, sk, 5000);

  // Dirty a world on an unrelated trial, then recycle it into the same
  // scenario the fresh world ran.
  Scenario dirty = build_departure_scenario(stress_config(31337));
  (void)run_trace(dirty, sk, 2500);  // leave it mid-flight, channels loaded
  Scenario reused =
      build_departure_scenario(stress_config(777), std::move(dirty.world));
  const std::uint64_t reused_hash = run_trace(reused, sk, 5000);

  EXPECT_EQ(reused_hash, fresh_hash);
}

// Same property across scenario families: a world retired from a departure
// trial is recycled into a framework trial (different process population,
// different message mix).
TEST_P(WorldReset, ReuseAcrossScenarioFamilies) {
  const SchedulerKind sk = GetParam();

  Scenario fresh = build_framework_scenario(stress_config(99), "ring");
  const std::uint64_t fresh_hash = run_trace(fresh, sk, 5000);

  Scenario dirty = build_departure_scenario(stress_config(5));
  (void)run_trace(dirty, sk, 2000);
  Scenario reused = build_framework_scenario(stress_config(99), "ring",
                                             std::move(dirty.world));
  const std::uint64_t reused_hash = run_trace(reused, sk, 5000);

  EXPECT_EQ(reused_hash, fresh_hash);
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, WorldReset,
                         testing::Values(SchedulerKind::Random,
                                         SchedulerKind::RoundRobin,
                                         SchedulerKind::Rounds,
                                         SchedulerKind::Adversarial),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// One world cycled through a whole seed sweep stays equivalent to building
// each trial from scratch — the exact loop an ExperimentDriver worker runs.
TEST(WorldReset, SweepWithOneWorldMatchesFreshBuilds) {
  ScenarioSpec spec;
  spec.family = ScenarioFamily::Departure;
  spec.config = stress_config(0);

  std::unique_ptr<World> carried;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Scenario fresh = spec.build(seed);
    const std::uint64_t fresh_hash =
        run_trace(fresh, SchedulerKind::Random, 4000);

    Scenario reused = spec.build(seed, std::move(carried));
    const std::uint64_t reused_hash =
        run_trace(reused, SchedulerKind::Random, 4000);

    EXPECT_EQ(reused_hash, fresh_hash) << "seed " << seed;
    carried = std::move(reused.world);
  }
}

// reset() must rewind statistics and population, not just channels.
TEST(WorldReset, ResetRewindsCountersAndPopulation) {
  Scenario sc = build_departure_scenario(stress_config(12));
  auto sched = SchedulerSpec::of(SchedulerKind::Random).make();
  for (int i = 0; i < 1000; ++i)
    if (!sc.world->step(*sched)) break;
  ASSERT_GT(sc.world->steps(), 0u);

  sc.world->reset(12);
  EXPECT_EQ(sc.world->steps(), 0u);
  EXPECT_EQ(sc.world->size(), 0u);
  EXPECT_EQ(sc.world->sends(), 0u);
  EXPECT_EQ(sc.world->deliveries(), 0u);
}

// Minimal processes whose handlers are themselves allocation-free, so any
// allocation observed during stepping comes from the kernel.
class IdleProc final : public Process {
 public:
  IdleProc(Ref self, Mode mode, std::uint64_t key) : Process(self, mode, key) {}
  void on_timeout(Context&) override {}
  void on_message(Context&, const Message&) override {}
  void collect_refs(std::vector<RefInfo>&) const override {}
  const char* protocol_name() const override { return "idle"; }
};

class PingProc final : public Process {
 public:
  PingProc(Ref self, Mode mode, std::uint64_t key) : Process(self, mode, key) {}
  void set_next(Ref next) { next_ = next; }
  void on_timeout(Context& ctx) override {
    if (next_.valid()) ctx.send(next_, Message::present(self_info()));
  }
  void on_message(Context&, const Message&) override {}
  void collect_refs(std::vector<RefInfo>& out) const override {
    if (next_.valid()) out.push_back(RefInfo{next_, ModeInfo::Staying, 0});
  }
  const char* protocol_name() const override { return "ping"; }

 private:
  Ref next_;
};

// After a few warm-up cycles the reset/respawn/run loop reaches the
// kernel's high-water marks: further cycles step with ZERO allocations.
// (Per-cycle allocations outside the snapshot — the Process objects
// themselves and the scheduler — are construction, not stepping.)
TEST(WorldReset, SteadyStateResetCycleIsAllocationFree) {
  if (!alloc_stats::hooked())
    GTEST_SKIP() << "counting operator new/delete not linked";

  World w(1);
  auto cycle = [&w](std::uint64_t seed) -> std::uint64_t {
    w.reset(seed);
    constexpr std::size_t kRing = 8;
    std::vector<Ref> ring;
    for (std::size_t i = 0; i < kRing; ++i)
      ring.push_back(w.spawn<PingProc>(Mode::Staying, i));
    for (std::size_t i = 0; i < kRing; ++i)
      w.process_as<PingProc>(ring[i].id()).set_next(ring[(i + 1) % kRing]);
    for (std::size_t i = kRing; i < 32; ++i)
      w.spawn<IdleProc>(Mode::Staying, i);
    auto sched = SchedulerSpec::of(SchedulerKind::Random).make();
    const auto before = alloc_stats::snapshot();
    for (int i = 0; i < 5000; ++i)
      if (!w.step(*sched)) break;
    return alloc_stats::allocs_since(before);
  };

  for (std::uint64_t seed = 1; seed <= 3; ++seed) (void)cycle(seed);  // warm

  std::uint64_t total = 0;
  for (std::uint64_t seed = 4; seed <= 7; ++seed) total += cycle(seed);
  EXPECT_EQ(total, 0u);
}

}  // namespace
}  // namespace fdp
