#include "analysis/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "analysis/scenario.hpp"
#include "core/oracle.hpp"

namespace fdp {
namespace {

TEST(Trace, RecordsActionsToRing) {
  ScenarioConfig cfg;
  cfg.n = 6;
  cfg.topology = "ring";
  cfg.leave_fraction = 0.3;
  cfg.seed = 4;
  Scenario sc = build_departure_scenario(cfg);
  TraceRecorder trace(/*ring_capacity=*/16);
  sc.world->add_observer(&trace);
  RandomScheduler sched;
  for (int i = 0; i < 100; ++i) (void)sc.world->step(sched);
  EXPECT_EQ(trace.recorded(), 100u);
  EXPECT_EQ(trace.ring().size(), 16u);  // capped
  for (const std::string& line : trace.ring()) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"actor\":"), std::string::npos);
    EXPECT_NE(line.find("\"kind\":"), std::string::npos);
  }
}

TEST(Trace, StreamsToFile) {
  const std::string path = testing::TempDir() + "fdp_trace_test.jsonl";
  {
    ScenarioConfig cfg;
    cfg.n = 4;
    cfg.topology = "line";
    cfg.seed = 1;
    Scenario sc = build_departure_scenario(cfg);
    TraceRecorder trace(8, path);
    sc.world->add_observer(&trace);
    RandomScheduler sched;
    for (int i = 0; i < 50; ++i) (void)sc.world->step(sched);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
  }
  EXPECT_EQ(lines, 50);
  std::remove(path.c_str());
}

TEST(Trace, SurfacesUnopenableStream) {
  TraceRecorder trace(4, "/nonexistent-dir/fdp_trace.jsonl");
  EXPECT_FALSE(trace.ok());
  EXPECT_NE(trace.error().find("cannot open"), std::string::npos);
  EXPECT_NE(trace.error().find("/nonexistent-dir/fdp_trace.jsonl"),
            std::string::npos);
  EXPECT_FALSE(trace.flush());

  // Recording into a dead stream is harmless: the ring still works.
  ScenarioConfig cfg;
  cfg.n = 4;
  cfg.topology = "line";
  cfg.seed = 2;
  Scenario sc = build_departure_scenario(cfg);
  sc.world->add_observer(&trace);
  RandomScheduler sched;
  for (int i = 0; i < 20; ++i) (void)sc.world->step(sched);
  EXPECT_EQ(trace.recorded(), 20u);
  EXPECT_FALSE(trace.ring().empty());
  EXPECT_FALSE(trace.flush());
}

TEST(Trace, FlushReportsHealthyStream) {
  const std::string path = testing::TempDir() + "fdp_trace_flush.jsonl";
  TraceRecorder trace(4, path);
  ASSERT_TRUE(trace.ok()) << trace.error();
  ScenarioConfig cfg;
  cfg.n = 4;
  cfg.topology = "line";
  cfg.seed = 3;
  Scenario sc = build_departure_scenario(cfg);
  sc.world->add_observer(&trace);
  RandomScheduler sched;
  for (int i = 0; i < 20; ++i) (void)sc.world->step(sched);
  EXPECT_TRUE(trace.flush());
  EXPECT_EQ(trace.error(), "");
  std::remove(path.c_str());
}

TEST(Trace, JsonEncodesMessageContent) {
  ActionRecord rec;
  rec.step = 7;
  rec.actor = 3;
  rec.kind = ActionRecord::Kind::Deliver;
  rec.consumed = Message::present(RefInfo{Ref::make(5), ModeInfo::Leaving, 0});
  rec.sent.emplace_back(Ref::make(2),
                        Message::forward(RefInfo{Ref::make(5),
                                                 ModeInfo::Leaving, 0}));
  rec.exited = true;
  const std::string json = TraceRecorder::to_json(rec);
  EXPECT_NE(json.find("\"step\":7"), std::string::npos);
  EXPECT_NE(json.find("\"actor\":3"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"deliver\""), std::string::npos);
  EXPECT_NE(json.find("\"verb\":\"present\""), std::string::npos);
  EXPECT_NE(json.find("\"verb\":\"forward\""), std::string::npos);
  EXPECT_NE(json.find("\"to\":5"), std::string::npos);
  EXPECT_NE(json.find("\"mode\":\"leaving\""), std::string::npos);
  EXPECT_NE(json.find("\"exited\":true"), std::string::npos);
}

}  // namespace
}  // namespace fdp
