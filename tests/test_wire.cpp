// Wire-format tests (ISSUE 7 satellite): a 10k-seed round-trip property
// over every message kind — including maximum-degree RefInfo sets and
// messages whose SmallVec ref buffers spilled to the heap — plus typed
// rejection of truncated, overlong and otherwise malformed frames.
// Malformed peer input must NEVER abort: every failure maps to a
// WireError.
#include <gtest/gtest.h>

#include <vector>

#include "net/wire.hpp"
#include "util/rng.hpp"

namespace fdp::net {
namespace {

Message random_message(Rng& rng) {
  Message m;
  m.set_verb(static_cast<Verb>(rng.below(6)));  // Present..User, every kind
  m.set_tag(static_cast<std::uint32_t>(rng()) & kMaxTag);
  m.token = rng();
  m.seq = rng();
  // Mostly small (inline SmallVec), regularly spilled (> 2 inline slots),
  // occasionally at the wire cap.
  std::size_t nrefs;
  const std::uint64_t shape = rng.below(100);
  if (shape < 50)
    nrefs = rng.below(3);  // 0..2: inline
  else if (shape < 95)
    nrefs = 3 + rng.below(30);  // spilled
  else
    nrefs = kMaxWireRefs - rng.below(3);  // at/near the cap
  for (std::size_t i = 0; i < nrefs; ++i) {
    m.refs.push_back(RefInfo{Ref::make(static_cast<ProcessId>(rng())),
                             static_cast<ModeInfo>(rng.below(3)),
                             rng()});
  }
  return m;
}

void expect_equal(const Message& a, const Message& b) {
  ASSERT_EQ(a.verb(), b.verb());
  ASSERT_EQ(a.tag(), b.tag());
  ASSERT_EQ(a.token, b.token);
  ASSERT_EQ(a.seq, b.seq);
  ASSERT_EQ(a.refs.size(), b.refs.size());
  for (std::size_t i = 0; i < a.refs.size(); ++i) {
    ASSERT_EQ(a.refs[i].ref, b.refs[i].ref);
    ASSERT_EQ(a.refs[i].mode, b.refs[i].mode);
    ASSERT_EQ(a.refs[i].key, b.refs[i].key);
  }
}

TEST(Wire, RoundTrip10kSeeds) {
  for (std::uint64_t seed = 1; seed <= 10'000; ++seed) {
    Rng rng(seed);
    const Message m = random_message(rng);
    const ProcessId src = static_cast<ProcessId>(rng());
    const ProcessId dst = static_cast<ProcessId>(rng());

    std::vector<std::uint8_t> buf;
    encode_frame(m, src, dst, buf);
    ASSERT_EQ(buf.size(), encoded_size(m));

    DecodedFrame out;
    std::size_t consumed = 0;
    ASSERT_EQ(decode_frame(buf.data(), buf.size(), out, &consumed),
              WireError::None)
        << "seed " << seed;
    EXPECT_EQ(consumed, buf.size());
    EXPECT_EQ(out.src, src);
    EXPECT_EQ(out.dst, dst);
    expect_equal(m, out.msg);
  }
}

TEST(Wire, BackToBackFramesDecodeByConsumed) {
  Rng rng(7);
  std::vector<std::uint8_t> buf;
  std::vector<Message> sent;
  for (int i = 0; i < 5; ++i) {
    sent.push_back(random_message(rng));
    encode_frame(sent.back(), 1, 2, buf);
  }
  std::size_t off = 0;
  for (const Message& m : sent) {
    DecodedFrame out;
    std::size_t consumed = 0;
    ASSERT_EQ(decode_frame(buf.data() + off, buf.size() - off, out, &consumed),
              WireError::None);
    expect_equal(m, out.msg);
    off += consumed;
  }
  EXPECT_EQ(off, buf.size());
}

std::vector<std::uint8_t> valid_frame() {
  Message m;
  m.set_verb(Verb::Overlay);
  m.set_tag(kMaxWireRefs);  // arbitrary
  m.token = 42;
  m.seq = 99;
  m.refs.push_back(RefInfo{Ref::make(3), ModeInfo::Leaving, 1234});
  m.refs.push_back(RefInfo{Ref::make(4), ModeInfo::Staying, 5678});
  m.refs.push_back(RefInfo{Ref::make(5), ModeInfo::Unknown, 9});
  std::vector<std::uint8_t> buf;
  encode_frame(m, 6, 7, buf);
  return buf;
}

void put32(std::vector<std::uint8_t>& b, std::size_t at, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    b[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
}

TEST(Wire, EveryTruncationRejectedTyped) {
  const std::vector<std::uint8_t> buf = valid_frame();
  for (std::size_t len = 0; len < buf.size(); ++len) {
    DecodedFrame out;
    std::size_t consumed = 0;
    const WireError e = decode_frame(buf.data(), len, out, &consumed);
    EXPECT_EQ(e, WireError::Truncated) << "prefix length " << len;
    EXPECT_LE(consumed, len);  // resync never skips past the buffer
  }
}

TEST(Wire, OverlongRejected) {
  std::vector<std::uint8_t> buf = valid_frame();
  put32(buf, 0, static_cast<std::uint32_t>(max_frame_bytes() + 1));
  DecodedFrame out;
  EXPECT_EQ(decode_frame(buf.data(), buf.size(), out), WireError::Overlong);
}

TEST(Wire, LengthTooSmallForHeaderRejected) {
  std::vector<std::uint8_t> buf = valid_frame();
  put32(buf, 0, static_cast<std::uint32_t>(kFrameHeaderBytes - 1));
  DecodedFrame out;
  EXPECT_EQ(decode_frame(buf.data(), buf.size(), out), WireError::Truncated);
}

TEST(Wire, BadMagicRejected) {
  std::vector<std::uint8_t> buf = valid_frame();
  buf[5] ^= 0xFF;
  DecodedFrame out;
  EXPECT_EQ(decode_frame(buf.data(), buf.size(), out), WireError::BadMagic);
}

TEST(Wire, BadVersionRejected) {
  std::vector<std::uint8_t> buf = valid_frame();
  buf[8] = 0xEE;
  DecodedFrame out;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_frame(buf.data(), buf.size(), out, &consumed),
            WireError::BadVersion);
  // The whole (trustworthy-length) frame is skippable for resync.
  EXPECT_EQ(consumed, buf.size());
}

TEST(Wire, BadVerbRejected) {
  std::vector<std::uint8_t> buf = valid_frame();
  buf[10] = 250;
  DecodedFrame out;
  EXPECT_EQ(decode_frame(buf.data(), buf.size(), out), WireError::BadVerb);
}

TEST(Wire, BadPadRejected) {
  std::vector<std::uint8_t> buf = valid_frame();
  buf[11] = 1;
  DecodedFrame out;
  EXPECT_EQ(decode_frame(buf.data(), buf.size(), out), WireError::BadPad);
}

TEST(Wire, BadModeRejected) {
  std::vector<std::uint8_t> buf = valid_frame();
  buf[kFrameHeaderBytes + 4] = 7;  // first ref's mode byte
  DecodedFrame out;
  EXPECT_EQ(decode_frame(buf.data(), buf.size(), out), WireError::BadMode);
}

TEST(Wire, BadRefCountRejected) {
  std::vector<std::uint8_t> buf = valid_frame();
  put32(buf, 40, kMaxWireRefs + 1);
  DecodedFrame out;
  EXPECT_EQ(decode_frame(buf.data(), buf.size(), out),
            WireError::BadRefCount);
}

TEST(Wire, LengthMismatchRejected) {
  std::vector<std::uint8_t> buf = valid_frame();
  put32(buf, 40, 1);  // claims 1 ref; length says 3
  DecodedFrame out;
  EXPECT_EQ(decode_frame(buf.data(), buf.size(), out),
            WireError::LengthMismatch);
}

TEST(Wire, ErrorNamesCoverEveryCode) {
  for (int e = 0; e <= static_cast<int>(WireError::LengthMismatch); ++e)
    EXPECT_STRNE(to_string(static_cast<WireError>(e)), "?");
}

TEST(Wire, RandomGarbageNeverAborts) {
  for (std::uint64_t seed = 1; seed <= 2'000; ++seed) {
    Rng rng(seed);
    std::vector<std::uint8_t> junk(rng.below(200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
    DecodedFrame out;
    std::size_t consumed = 0;
    (void)decode_frame(junk.data(), junk.size(), out, &consumed);
    EXPECT_LE(consumed, junk.size());
  }
}

}  // namespace
}  // namespace fdp::net
