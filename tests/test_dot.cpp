#include "graph/dot.hpp"

#include <gtest/gtest.h>

#include "core/departure_process.hpp"
#include "sim/world.hpp"

namespace fdp {
namespace {

struct Fixture {
  World w{1};
  std::vector<Ref> refs;

  Fixture() {
    refs.push_back(w.spawn<DepartureProcess>(Mode::Staying, 10));
    refs.push_back(w.spawn<DepartureProcess>(Mode::Leaving, 20));
    refs.push_back(w.spawn<DepartureProcess>(Mode::Staying, 30));
    w.process_as<DepartureProcess>(0).nbrs_mut().insert(
        {refs[1], ModeInfo::Leaving, 20});
    // Invalid knowledge: 2 believes staying-0 is leaving.
    w.process_as<DepartureProcess>(2).nbrs_mut().insert(
        {refs[0], ModeInfo::Leaving, 10});
    // In-flight reference: implicit edge 1 -> 2.
    w.post(refs[1], Message::present(RefInfo{refs[2], ModeInfo::Staying, 30}));
  }
};

TEST(Dot, ContainsAllNodesAndEdges) {
  Fixture f;
  const std::string dot = world_to_dot(f.w);
  EXPECT_NE(dot.find("digraph PG {"), std::string::npos);
  EXPECT_NE(dot.find("n0 ["), std::string::npos);
  EXPECT_NE(dot.find("n1 ["), std::string::npos);
  EXPECT_NE(dot.find("n2 ["), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("n2 -> n0"), std::string::npos);
  EXPECT_NE(dot.find("n1 -> n2"), std::string::npos);  // implicit
  EXPECT_EQ(dot.back(), '\n');
}

TEST(Dot, MarksLeavingAndInvalidKnowledge) {
  Fixture f;
  const std::string dot = world_to_dot(f.w);
  EXPECT_NE(dot.find("(leaving)"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);  // 2's wrong belief
}

TEST(Dot, ImplicitEdgesDashedAndOptional) {
  Fixture f;
  const std::string with = world_to_dot(f.w);
  EXPECT_NE(with.find("style=dashed"), std::string::npos);
  DotOptions opt;
  opt.implicit_edges = false;
  const std::string without = world_to_dot(f.w, "PG", opt);
  EXPECT_EQ(without.find("n1 -> n2"), std::string::npos);
}

TEST(Dot, GoneNodesDashedEdgesDropped) {
  Fixture f;
  f.w.force_life(1, LifeState::Gone);
  const std::string dot = world_to_dot(f.w);
  EXPECT_NE(dot.find("color=gray"), std::string::npos);
  // 1's channel content no longer contributes edges.
  EXPECT_EQ(dot.find("n1 -> n2"), std::string::npos);
}

TEST(Dot, ShowKeysOption) {
  Fixture f;
  DotOptions opt;
  opt.show_keys = true;
  const std::string dot = world_to_dot(f.w, "PG", opt);
  EXPECT_NE(dot.find("k=10"), std::string::npos);
  EXPECT_NE(dot.find("k=30"), std::string::npos);
}

}  // namespace
}  // namespace fdp
