// Unit tests for the ring overlay's wrap machinery (the part that closes
// the sorted list into a cycle, see overlay/ring.hpp).
#include "overlay/ring.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "overlay/topology_checks.hpp"

namespace fdp {
namespace {

/// OverlayCtx capturing sends for inspection.
class CaptureCtx final : public OverlayCtx {
 public:
  CaptureCtx(Ref self, std::uint64_t key) : self_(self), key_(key) {}
  [[nodiscard]] Ref self() const override { return self_; }
  [[nodiscard]] std::uint64_t self_key() const override { return key_; }
  [[nodiscard]] RefInfo self_info() const override {
    return RefInfo{self_, ModeInfo::Staying, key_};
  }
  void send_overlay(Ref dest, std::uint32_t tag, std::vector<RefInfo> refs,
                    std::uint64_t token) override {
    (void)token;
    sends.push_back({dest, tag, std::move(refs)});
  }

  struct Send {
    Ref dest;
    std::uint32_t tag;
    std::vector<RefInfo> refs;
  };
  std::vector<Send> sends;

 private:
  Ref self_;
  std::uint64_t key_;
};

RefInfo ri(ProcessId id, std::uint64_t key) {
  return RefInfo{Ref::make(id), ModeInfo::Staying, key};
}

TEST(RingWrap, BelievedMinStoresMaxCandidate) {
  RingOverlay ring;
  ring.bind(Ref::make(0), 100);  // no left neighbors => believed min
  CaptureCtx ctx(Ref::make(0), 100);
  ring.integrate(ri(1, 200));  // one right neighbor
  ring.on_overlay_message(ctx, kTagWrap, {ri(9, 900)});
  // Stored: right neighbor + wrap slot.
  EXPECT_EQ(ring.stored().size(), 2u);
  bool has_wrap = false;
  for (const RefInfo& r : ring.stored())
    if (r.ref == Ref::make(9)) has_wrap = true;
  EXPECT_TRUE(has_wrap);
  EXPECT_TRUE(ctx.sends.empty());  // stored, not forwarded
}

TEST(RingWrap, BetterMaxCandidateDisplacesWorse) {
  RingOverlay ring;
  ring.bind(Ref::make(0), 100);
  CaptureCtx ctx(Ref::make(0), 100);
  ring.on_overlay_message(ctx, kTagWrap, {ri(5, 500)});
  ring.on_overlay_message(ctx, kTagWrap, {ri(9, 900)});
  // 9 displaces 5; 5 returns to regular storage (it is a right neighbor).
  std::map<ProcessId, bool> present;
  for (const RefInfo& r : ring.stored()) present[r.ref.id()] = true;
  EXPECT_TRUE(present[5]);
  EXPECT_TRUE(present[9]);
  // A weaker candidate later does not displace.
  ring.on_overlay_message(ctx, kTagWrap, {ri(7, 700)});
  EXPECT_EQ(ring.stored().size(), 3u);
}

TEST(RingWrap, NonEndpointForwardsTowardMin) {
  RingOverlay ring;
  ring.bind(Ref::make(5), 500);
  CaptureCtx ctx(Ref::make(5), 500);
  ring.integrate(ri(3, 300));  // left neighbors exist: not the min
  ring.integrate(ri(1, 100));
  // A max candidate looking for the min must be forwarded to the
  // SMALLEST known left neighbor.
  ring.on_overlay_message(ctx, kTagWrap, {ri(9, 900)});
  ASSERT_EQ(ctx.sends.size(), 1u);
  EXPECT_EQ(ctx.sends[0].dest, Ref::make(1));
  EXPECT_EQ(ctx.sends[0].tag, kTagWrap);
  ASSERT_EQ(ctx.sends[0].refs.size(), 1u);
  EXPECT_EQ(ctx.sends[0].refs[0].ref, Ref::make(9));
}

TEST(RingWrap, MinCandidateForwardsTowardMax) {
  RingOverlay ring;
  ring.bind(Ref::make(5), 500);
  CaptureCtx ctx(Ref::make(5), 500);
  ring.integrate(ri(7, 700));
  ring.integrate(ri(9, 900));
  ring.on_overlay_message(ctx, kTagWrap, {ri(1, 100)});
  ASSERT_EQ(ctx.sends.size(), 1u);
  EXPECT_EQ(ctx.sends[0].dest, Ref::make(9));  // largest known right
}

TEST(RingWrap, OwnReferenceDropped) {
  RingOverlay ring;
  ring.bind(Ref::make(5), 500);
  CaptureCtx ctx(Ref::make(5), 500);
  ring.on_overlay_message(ctx, kTagWrap, {ri(5, 500)});
  EXPECT_TRUE(ring.empty());
  EXPECT_TRUE(ctx.sends.empty());
}

TEST(RingWrap, EvictionRelaunchesStaleWrap) {
  RingOverlay ring;
  ring.bind(Ref::make(4), 400);
  CaptureCtx ctx(Ref::make(4), 400);
  // Believed min: accept a max candidate into the wrap slot.
  ring.integrate(ri(7, 700));
  ring.on_overlay_message(ctx, kTagWrap, {ri(9, 900)});
  ASSERT_EQ(ring.stored().size(), 2u);
  // Now we learn about a smaller process: we are NOT the min, the wrap
  // slot is stale. maintain() must relaunch the candidate leftward.
  ring.integrate(ri(1, 100));
  ring.maintain(ctx);
  bool relaunched = false;
  for (const auto& s : ctx.sends) {
    if (s.tag == kTagWrap && s.refs.size() == 1 &&
        s.refs[0].ref == Ref::make(9) && s.dest == Ref::make(1))
      relaunched = true;
  }
  EXPECT_TRUE(relaunched);
  // The slot itself is clear now.
  for (const RefInfo& r : ring.stored()) EXPECT_NE(r.ref, Ref::make(9));
}

TEST(RingWrap, EndpointsLaunchPeriodically) {
  RingOverlay ring;
  ring.bind(Ref::make(0), 100);
  CaptureCtx ctx(Ref::make(0), 100);
  ring.integrate(ri(1, 200));
  // Launches are throttled; across enough maintain() calls at least one
  // wrap launch toward the believed max must happen.
  for (int i = 0; i < 8; ++i) ring.maintain(ctx);
  bool launched = false;
  for (const auto& s : ctx.sends) {
    if (s.tag == kTagWrap && s.refs.size() == 1 &&
        s.refs[0].ref == Ref::make(0))
      launched = true;
  }
  EXPECT_TRUE(launched);
}

TEST(RingWrap, TakeAllIncludesWrapSlot) {
  RingOverlay ring;
  ring.bind(Ref::make(0), 100);
  CaptureCtx ctx(Ref::make(0), 100);
  ring.integrate(ri(1, 200));
  ring.on_overlay_message(ctx, kTagWrap, {ri(9, 900)});
  const auto all = ring.take_all();
  EXPECT_EQ(all.size(), 2u);
  EXPECT_TRUE(ring.empty());
}

TEST(RingWrap, UpdateModePropagatesToWrapSlot) {
  RingOverlay ring;
  ring.bind(Ref::make(0), 100);
  CaptureCtx ctx(Ref::make(0), 100);
  ring.on_overlay_message(ctx, kTagWrap, {ri(9, 900)});
  ring.update_mode(Ref::make(9), ModeInfo::Leaving);
  ASSERT_EQ(ring.stored().size(), 1u);
  EXPECT_EQ(ring.stored()[0].mode, ModeInfo::Leaving);
}

TEST(RingWrap, IntroductionTargetsAreKeptNeighborsPlusWrap) {
  RingOverlay ring;
  ring.bind(Ref::make(5), 500);
  CaptureCtx ctx(Ref::make(5), 500);
  ring.integrate(ri(3, 300));   // closest left
  ring.integrate(ri(1, 100));   // farther left: not a target
  ring.integrate(ri(7, 700));   // closest right
  ring.integrate(ri(9, 900));   // farther right: not a target
  const auto targets = ring.introduction_targets();
  std::map<ProcessId, bool> t;
  for (const RefInfo& r : targets) t[r.ref.id()] = true;
  EXPECT_TRUE(t[3]);
  EXPECT_TRUE(t[7]);
  EXPECT_FALSE(t[1]);
  EXPECT_FALSE(t[9]);
}

}  // namespace
}  // namespace fdp
