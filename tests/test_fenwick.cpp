#include "util/fenwick.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace fdp {
namespace {

TEST(Fenwick, EmptyTree) {
  Fenwick fw;
  EXPECT_EQ(fw.size(), 0u);
  EXPECT_EQ(fw.total(), 0u);
  EXPECT_EQ(fw.prefix(0), 0u);
  EXPECT_EQ(fw.next_positive(0), 0u);
}

TEST(Fenwick, FirstPushBackIsQueryable) {
  // Regression: the default-constructed tree must carry its 1-based
  // sentinel slot, or the very first push_back writes the node for
  // position 0 into tree_[0] and every later prefix() reads shifted.
  Fenwick fw;
  fw.push_back(3);
  EXPECT_EQ(fw.total(), 3u);
  EXPECT_EQ(fw.prefix(1), 3u);
  EXPECT_EQ(fw.select(0), 0u);
  EXPECT_EQ(fw.select(2), 0u);
}

TEST(Fenwick, PushBackMidweightSplitsCorrectly) {
  // Appending at a power-of-two boundary makes the new node cover the
  // whole existing range — the widest case of push_back's node seeding.
  Fenwick fw;
  const std::uint64_t ws[8] = {3, 1, 0, 2, 1, 0, 3, 2};
  for (std::uint64_t w : ws) fw.push_back(w);
  std::uint64_t cum = 0;
  for (std::size_t k = 0; k <= 8; ++k) {
    EXPECT_EQ(fw.prefix(k), cum) << "k=" << k;
    if (k < 8) cum += ws[k];
  }
}

TEST(Fenwick, SizedConstructorStartsZeroed) {
  Fenwick fw(5);
  EXPECT_EQ(fw.size(), 5u);
  EXPECT_EQ(fw.total(), 0u);
  fw.set(3, 7);
  EXPECT_EQ(fw.prefix(3), 0u);
  EXPECT_EQ(fw.prefix(4), 7u);
  EXPECT_EQ(fw.next_positive(0), 3u);
  EXPECT_EQ(fw.next_positive(4), 5u);
}

TEST(Fenwick, MatchesReferenceArrayUnderRandomOps) {
  std::mt19937_64 rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    Fenwick fw;
    std::vector<std::uint64_t> ref;
    const int n = 1 + static_cast<int>(rng() % 40);
    for (int i = 0; i < n; ++i) {
      const std::uint64_t w = rng() % 4;
      fw.push_back(w);
      ref.push_back(w);
    }
    for (int op = 0; op < 200; ++op) {
      const std::size_t i = rng() % ref.size();
      const std::uint64_t w = rng() % 5;
      fw.set(i, w);
      ref[i] = w;

      std::uint64_t tot = 0;
      for (std::uint64_t v : ref) tot += v;
      ASSERT_EQ(fw.total(), tot);

      std::uint64_t cum = 0;
      for (std::size_t k = 0; k <= ref.size(); ++k) {
        ASSERT_EQ(fw.prefix(k), cum) << "trial=" << trial << " k=" << k;
        if (k < ref.size()) cum += ref[k];
      }

      std::size_t pos = 0;
      std::uint64_t seen = 0;
      for (std::uint64_t k = 0; k < tot; ++k) {
        while (seen + ref[pos] <= k) seen += ref[pos++];
        ASSERT_EQ(fw.select(k), pos) << "trial=" << trial << " k=" << k;
      }

      for (std::size_t f = 0; f <= ref.size(); ++f) {
        std::size_t want = ref.size();
        for (std::size_t j = f; j < ref.size(); ++j)
          if (ref[j] > 0) {
            want = j;
            break;
          }
        ASSERT_EQ(fw.next_positive(f), want) << "trial=" << trial;
      }
    }
  }
}

TEST(Fenwick, SelectEnumeratesInAscendingPositionOrder) {
  // The property the schedulers' byte-identical sampling rests on: k-th
  // weight unit in position-ascending order, ties broken by position.
  Fenwick fw;
  fw.push_back(2);  // units 0,1 -> position 0
  fw.push_back(0);
  fw.push_back(3);  // units 2,3,4 -> position 2
  EXPECT_EQ(fw.select(0), 0u);
  EXPECT_EQ(fw.select(1), 0u);
  EXPECT_EQ(fw.select(2), 2u);
  EXPECT_EQ(fw.select(4), 2u);
}

}  // namespace
}  // namespace fdp
