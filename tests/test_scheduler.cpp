// Unit tests of the concrete scheduler classes. These construct
// RandomScheduler & co. directly on purpose — the classes ARE the unit
// under test here. Everything else (examples, benches, integration
// tests) instantiates schedulers through SchedulerSpec::of(kind).make().
#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace fdp {
namespace {

using testsupport::ScriptedProcess;
using testsupport::spawn_scripted;

TEST(RandomScheduler, ReportsNoneWhenNothingEnabled) {
  World w(1);
  const auto refs = spawn_scripted(w, 1);
  (void)refs;
  w.force_life(0, LifeState::Gone);
  RandomScheduler sched;
  EXPECT_FALSE(w.step(sched));
}

TEST(RandomScheduler, EventuallyDeliversEveryMessage) {
  // Fair receipt: with the oldest-bias, an initially enqueued message is
  // delivered within a reasonable horizon even under constant new traffic.
  World w(7);
  const auto refs = spawn_scripted(w, 3);
  auto& p0 = w.process_as<ScriptedProcess>(0);
  p0.on_timeout_fn = [&](ScriptedProcess&, Context& ctx) {
    ctx.send(refs[1], Message{});  // constant chatter
  };
  Message probe;
  probe.set_verb(Verb::User);
  probe.set_tag(777);
  w.post(refs[2], probe);
  RandomScheduler sched;
  bool delivered = false;
  for (int i = 0; i < 2000 && !delivered; ++i) {
    (void)w.step(sched);
    for (const Message& m : w.process_as<ScriptedProcess>(2).received)
      if (m.tag() == 777) delivered = true;
  }
  EXPECT_TRUE(delivered);
}

TEST(RandomScheduler, TimeoutsHappenForAllAwake) {
  World w(3);
  spawn_scripted(w, 5);
  RandomScheduler sched;
  for (int i = 0; i < 500; ++i) (void)w.step(sched);
  for (ProcessId p = 0; p < 5; ++p)
    EXPECT_GT(w.process_as<ScriptedProcess>(p).timeout_count, 0)
        << "process " << p << " starved";
}

TEST(RoundRobinScheduler, DeterministicOrder) {
  World w(1);
  spawn_scripted(w, 3);
  RoundRobinScheduler sched;
  // No messages: the first three actions must be the timeouts of 0,1,2.
  ASSERT_TRUE(w.step(sched));
  ASSERT_TRUE(w.step(sched));
  ASSERT_TRUE(w.step(sched));
  for (ProcessId p = 0; p < 3; ++p)
    EXPECT_EQ(w.process_as<ScriptedProcess>(p).timeout_count, 1);
}

TEST(RoundRobinScheduler, PrefersDeliveryAtAProcessSlot) {
  World w(1);
  const auto refs = spawn_scripted(w, 2);
  w.post(refs[0], Message{});
  RoundRobinScheduler sched;
  ASSERT_TRUE(w.step(sched));  // slot 0-deliver
  EXPECT_EQ(w.deliveries(), 1u);
}

TEST(RoundScheduler, CountsRounds) {
  World w(1);
  spawn_scripted(w, 4);
  RoundScheduler sched;
  // Each round = 4 timeouts (no messages). After 8 steps, 2 full rounds
  // have been drained (the counter increments on refill).
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(w.step(sched));
  ASSERT_TRUE(w.step(sched));  // first action of round 3
  EXPECT_EQ(sched.rounds(), 2u);
}

TEST(RoundScheduler, DeliversRoundMessagesBeforeTimeouts) {
  World w(1);
  const auto refs = spawn_scripted(w, 2);
  w.post(refs[0], Message{});
  w.post(refs[1], Message{});
  RoundScheduler sched;
  (void)w.step(sched);
  (void)w.step(sched);
  EXPECT_EQ(w.deliveries(), 2u);
  EXPECT_EQ(w.timeouts(), 0u);
}

TEST(AdversarialScheduler, WithholdsYoungMessages) {
  World w(1);
  const auto refs = spawn_scripted(w, 2);
  w.post(refs[0], Message{});
  AdversarialScheduler sched(/*min_age=*/5, /*deliver_burst=*/1);
  // For the first steps (while the message is young and someone is awake)
  // the scheduler must pick timeouts.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(w.step(sched));
    EXPECT_EQ(w.deliveries(), 0u) << "delivered too early at step " << i;
  }
  bool delivered = false;
  for (int i = 0; i < 10 && !delivered; ++i) {
    (void)w.step(sched);
    delivered = w.deliveries() > 0;
  }
  EXPECT_TRUE(delivered);
}

TEST(AdversarialScheduler, StillFairToTimeouts) {
  World w(5);
  const auto refs = spawn_scripted(w, 3);
  auto& p0 = w.process_as<ScriptedProcess>(0);
  p0.on_timeout_fn = [&](ScriptedProcess&, Context& ctx) {
    ctx.send(refs[1], Message{});
  };
  AdversarialScheduler sched(2, 2);
  for (int i = 0; i < 300; ++i) (void)w.step(sched);
  for (ProcessId p = 0; p < 3; ++p)
    EXPECT_GT(w.process_as<ScriptedProcess>(p).timeout_count, 10);
}

TEST(AdversarialScheduler, TimeoutRotationSurvivesMembershipChurn) {
  // Regression: the timeout cursor used to index a freshly built vector
  // of awake ids, so each exit shifted every later slot under the cursor
  // and processes could be skipped round after round (weak-fairness
  // drift). The cursor now advances over the stable ProcessId space:
  // once membership stops changing, timeouts rotate exactly.
  World w(1);
  spawn_scripted(w, 8);
  for (ProcessId leaver : {ProcessId{3}, ProcessId{5}}) {
    auto& proc = w.process_as<ScriptedProcess>(leaver);
    proc.on_timeout_fn = [](ScriptedProcess& self, Context& ctx) {
      if (self.timeout_count >= 3) ctx.exit_process();
    };
  }
  AdversarialScheduler sched(/*min_age=*/1'000'000, /*deliver_burst=*/1);
  // Churn phase: both leavers exit on their third timeout.
  for (int i = 0; i < 64; ++i) ASSERT_TRUE(w.step(sched));
  ASSERT_EQ(w.exits(), 2u);
  int before[8];
  for (ProcessId p = 0; p < 8; ++p)
    before[p] = w.process_as<ScriptedProcess>(p).timeout_count;
  // Stable phase: 10 full rotations over the 6 survivors.
  for (int i = 0; i < 60; ++i) ASSERT_TRUE(w.step(sched));
  for (ProcessId p = 0; p < 8; ++p) {
    const int delta =
        w.process_as<ScriptedProcess>(p).timeout_count - before[p];
    if (p == 3 || p == 5) {
      EXPECT_EQ(delta, 0) << "gone process " << p << " ran";
    } else {
      EXPECT_EQ(delta, 10) << "process " << p << " under/over-scheduled";
    }
  }
}

TEST(AdversarialScheduler, DeliversNewestFirstAmongAged) {
  World w(1);
  const auto refs = spawn_scripted(w, 1);
  w.force_life(0, LifeState::Asleep);  // no timeouts compete
  w.post(refs[0], Message{});          // seq 1
  w.post(refs[0], Message{});          // seq 2
  AdversarialScheduler sched(/*min_age=*/0, /*deliver_burst=*/10);
  ASSERT_TRUE(w.step(sched));
  // Newest (seq 2) delivered first.
  ASSERT_EQ(w.process_as<ScriptedProcess>(0).received.size(), 1u);
  EXPECT_EQ(w.process_as<ScriptedProcess>(0).received[0].seq, 2u);
}

}  // namespace
}  // namespace fdp
