#include "core/potential.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace fdp {
namespace {

using testsupport::ScriptedProcess;
using testsupport::spawn_scripted;

std::vector<Ref> spawn_mixed(World& w) {
  std::vector<Ref> refs;
  refs.push_back(w.spawn<ScriptedProcess>(Mode::Staying, 0));
  refs.push_back(w.spawn<ScriptedProcess>(Mode::Leaving, 1));
  refs.push_back(w.spawn<ScriptedProcess>(Mode::Staying, 2));
  return refs;
}

TEST(Potential, ZeroWhenAllKnowledgeValid) {
  World w(1);
  const auto refs = spawn_mixed(w);
  w.process_as<ScriptedProcess>(0).nbrs().insert(
      {refs[1], ModeInfo::Leaving, 0});
  w.process_as<ScriptedProcess>(2).nbrs().insert(
      {refs[0], ModeInfo::Staying, 0});
  EXPECT_EQ(phi(w), 0u);
}

TEST(Potential, CountsInvalidStoredKnowledge) {
  World w(1);
  const auto refs = spawn_mixed(w);
  // 0 believes leaving-1 is staying: one invalid stored instance.
  w.process_as<ScriptedProcess>(0).nbrs().insert(
      {refs[1], ModeInfo::Staying, 0});
  const PotentialBreakdown b = potential(take_snapshot(w));
  EXPECT_EQ(b.invalid_stored, 1u);
  EXPECT_EQ(b.invalid_in_flight, 0u);
  EXPECT_EQ(b.phi(), 1u);
}

TEST(Potential, CountsInvalidInFlightKnowledge) {
  World w(1);
  const auto refs = spawn_mixed(w);
  w.post(refs[2], Message::present(RefInfo{refs[1], ModeInfo::Staying, 0}));
  const PotentialBreakdown b = potential(take_snapshot(w));
  EXPECT_EQ(b.invalid_in_flight, 1u);
  EXPECT_EQ(b.phi(), 1u);
}

TEST(Potential, UnknownIsNotInvalid) {
  World w(1);
  const auto refs = spawn_mixed(w);
  w.process_as<ScriptedProcess>(0).nbrs().insert(
      {refs[1], ModeInfo::Unknown, 0});
  const PotentialBreakdown b = potential(take_snapshot(w));
  EXPECT_EQ(b.phi(), 0u);
  EXPECT_EQ(b.unknown, 1u);
}

TEST(Potential, GoneHoldersExcluded) {
  World w(1);
  const auto refs = spawn_mixed(w);
  w.process_as<ScriptedProcess>(0).nbrs().insert(
      {refs[1], ModeInfo::Staying, 0});  // invalid
  EXPECT_EQ(phi(w), 1u);
  w.force_life(0, LifeState::Gone);
  EXPECT_EQ(phi(w), 0u);
}

TEST(Potential, MultipleInstancesCountSeparately) {
  World w(1);
  const auto refs = spawn_mixed(w);
  w.process_as<ScriptedProcess>(0).nbrs().insert(
      {refs[1], ModeInfo::Staying, 0});
  w.post(refs[0], Message::present(RefInfo{refs[1], ModeInfo::Staying, 0}));
  w.post(refs[2], Message::forward(RefInfo{refs[1], ModeInfo::Staying, 0}));
  EXPECT_EQ(phi(w), 3u);
}

}  // namespace
}  // namespace fdp
