// GraphRewriter: primitive preconditions, effects, and Lemma 1 (weak
// connectivity preservation) as a property over random op sequences.
#include "universality/rewriter.hpp"

#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"

namespace fdp {
namespace {

DiGraph pair_graph() {
  DiGraph g(2);
  g.add_edge(0, 1);
  return g;
}

TEST(Rewriter, IntroductionAddsEdgeKeepingBoth) {
  DiGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  GraphRewriter rw(g);
  EXPECT_TRUE(rw.apply(RewriteOp::introduction(0, 1, 2)));
  EXPECT_TRUE(rw.graph().has_edge(1, 2));
  EXPECT_TRUE(rw.graph().has_edge(0, 2));  // copy kept
  EXPECT_EQ(rw.counts().introductions, 1u);
}

TEST(Rewriter, SelfIntroduction) {
  GraphRewriter rw(pair_graph());
  EXPECT_TRUE(rw.apply(RewriteOp::self_introduction(0, 1)));
  EXPECT_TRUE(rw.graph().has_edge(1, 0));
  EXPECT_TRUE(rw.graph().has_edge(0, 1));
}

TEST(Rewriter, DelegationMovesEdge) {
  DiGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  GraphRewriter rw(g);
  EXPECT_TRUE(rw.apply(RewriteOp::delegation(0, 1, 2)));
  EXPECT_FALSE(rw.graph().has_edge(0, 2));  // copy deleted
  EXPECT_TRUE(rw.graph().has_edge(1, 2));
}

TEST(Rewriter, FusionNeedsTwoCopies) {
  DiGraph g(2);
  g.add_edge(0, 1, 2);
  GraphRewriter rw(g);
  EXPECT_TRUE(rw.apply(RewriteOp::fusion(0, 1)));
  EXPECT_EQ(rw.graph().multiplicity(0, 1), 1u);
  EXPECT_FALSE(rw.apply(RewriteOp::fusion(0, 1)));  // single copy left
  EXPECT_EQ(rw.ops_rejected(), 1u);
}

TEST(Rewriter, ReversalFlipsEdge) {
  GraphRewriter rw(pair_graph());
  EXPECT_TRUE(rw.apply(RewriteOp::reversal(0, 1)));
  EXPECT_FALSE(rw.graph().has_edge(0, 1));
  EXPECT_TRUE(rw.graph().has_edge(1, 0));
}

TEST(Rewriter, PreconditionsRejected) {
  GraphRewriter rw(pair_graph());
  EXPECT_FALSE(rw.apply(RewriteOp::introduction(1, 0, 1)));  // v == w
  EXPECT_FALSE(rw.apply(RewriteOp::delegation(1, 0, 0)));    // no edges
  EXPECT_FALSE(rw.apply(RewriteOp::reversal(1, 0)));         // absent edge
  EXPECT_EQ(rw.ops_applied(), 0u);
}

TEST(RewriterDeath, SelfLoopInputAborts) {
  DiGraph g(2);
  g.add_edge(0, 0);
  EXPECT_DEATH(GraphRewriter{g}, "self-loop");
}

// Lemma 1 as a property: random legal primitive sequences starting from a
// weakly connected graph never disconnect it.
class Lemma1Sweep : public testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma1Sweep, RandomPrimitiveSequencesPreserveWeakConnectivity) {
  Rng rng(GetParam());
  const std::size_t n = 6 + GetParam() % 6;
  DiGraph g = gen::random_weakly_connected(n, n, 0.3, rng);
  GraphRewriter rw(std::move(g), /*verify_connectivity=*/true);
  std::uint64_t applied_target = 3000;
  while (rw.ops_applied() < applied_target) {
    const NodeId u = static_cast<NodeId>(rng.below(n));
    const NodeId v = static_cast<NodeId>(rng.below(n));
    const NodeId w = static_cast<NodeId>(rng.below(n));
    switch (rng.below(5)) {
      case 0: (void)rw.apply(RewriteOp::introduction(u, v, w)); break;
      case 1: (void)rw.apply(RewriteOp::self_introduction(u, v)); break;
      case 2: (void)rw.apply(RewriteOp::delegation(u, v, w)); break;
      case 3: (void)rw.apply(RewriteOp::fusion(u, v)); break;
      case 4: (void)rw.apply(RewriteOp::reversal(u, v)); break;
    }
    // Safety valve: with tiny graphs some op mixes stall; bail out on too
    // many rejections (the property is about applied ops).
    if (rw.ops_rejected() > 50'000) break;
  }
  EXPECT_EQ(rw.connectivity_violations(), 0u);
  EXPECT_TRUE(is_weakly_connected(rw.graph()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma1Sweep,
                         testing::Range<std::uint64_t>(1, 13));

// The paper also notes Introduction/Delegation/Fusion preserve *strong*
// reachability ("for any pair u,v with a directed path there will always
// be a directed path when only allowing these three primitives").
class StrongPreservationSweep : public testing::TestWithParam<std::uint64_t> {
};

TEST_P(StrongPreservationSweep, FirstThreePrimitivesPreserveReachability) {
  Rng rng(GetParam() * 31);
  const std::size_t n = 6;
  DiGraph g = gen::random_weakly_connected(n, 4, 0.5, rng);
  // Record the initial reachability matrix.
  std::vector<std::vector<bool>> reach0;
  for (NodeId u = 0; u < n; ++u) reach0.push_back(reachable_from(g, u));
  GraphRewriter rw(std::move(g));
  for (int i = 0; i < 2000; ++i) {
    const NodeId u = static_cast<NodeId>(rng.below(n));
    const NodeId v = static_cast<NodeId>(rng.below(n));
    const NodeId w = static_cast<NodeId>(rng.below(n));
    switch (rng.below(4)) {
      case 0: (void)rw.apply(RewriteOp::introduction(u, v, w)); break;
      case 1: (void)rw.apply(RewriteOp::self_introduction(u, v)); break;
      case 2: (void)rw.apply(RewriteOp::delegation(u, v, w)); break;
      case 3: (void)rw.apply(RewriteOp::fusion(u, v)); break;
    }
  }
  for (NodeId u = 0; u < n; ++u) {
    const auto now = reachable_from(rw.graph(), u);
    for (NodeId v = 0; v < n; ++v) {
      if (reach0[u][v]) {
        EXPECT_TRUE(now[v]) << u << " lost directed path to " << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrongPreservationSweep,
                         testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace fdp
