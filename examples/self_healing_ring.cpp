// Self-healing ring: topological self-stabilization + departures.
//
// Start a sorted-ring overlay from a deliberately *wrong* state — a cycle
// in scrambled key order with corrupted mode beliefs — with several
// members leaving. The wrapped protocol must simultaneously (a) untangle
// the ring into key order, (b) exclude the leavers, and (c) never
// disconnect the stayers. This is the full Theorem 4 story on the
// Re-Chord-style substrate.
//
//   ./self_healing_ring [--n 12] [--leave 4] [--seed 3]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/monitors.hpp"
#include "core/framework.hpp"
#include "core/oracle.hpp"
#include "overlay/topology_checks.hpp"
#include "sim/world.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

using namespace fdp;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::size_t n = static_cast<std::size_t>(flags.get_int("n", 12));
  const std::size_t leave =
      std::min(n - 1, static_cast<std::size_t>(flags.get_int("leave", 4)));
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 3)));
  flags.reject_unknown();

  World w(rng());
  std::vector<Ref> refs;
  std::vector<std::uint64_t> keys;
  std::vector<bool> leaving(n, false);
  for (std::size_t i = 0; i < leave; ++i) leaving[i] = true;
  {
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    rng.shuffle(order);
    std::vector<bool> shuffled(n);
    for (std::size_t i = 0; i < n; ++i) shuffled[order[i]] = leaving[i];
    leaving = shuffled;
  }
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back(rng() | 1);
    refs.push_back(w.spawn<FrameworkProcess>(
        leaving[i] ? Mode::Leaving : Mode::Staying, keys[i],
        make_overlay("ring")));
  }

  // Wire a cycle in SCRAMBLED order with randomly corrupted mode beliefs.
  std::vector<std::size_t> cycle(n);
  for (std::size_t i = 0; i < n; ++i) cycle[i] = i;
  rng.shuffle(cycle);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t a = cycle[i];
    const std::size_t b = cycle[(i + 1) % n];
    const bool lie = rng.chance(0.5);
    const ModeInfo belief =
        lie ? (leaving[b] ? ModeInfo::Staying : ModeInfo::Leaving)
            : (leaving[b] ? ModeInfo::Leaving : ModeInfo::Staying);
    w.process_as<FrameworkProcess>(static_cast<ProcessId>(a))
        .overlay_mut()
        .integrate(RefInfo{refs[b], belief, keys[b]});
  }
  w.set_oracle(make_single_oracle());

  std::printf("scrambled ring of %zu nodes (%zu leaving), beliefs 50%% lies\n",
              n, leave);

  SafetyMonitor safety(w, /*stride=*/4);
  w.add_observer(&safety);

  auto sched = SchedulerSpec::of(SchedulerKind::Random).make();
  std::uint64_t guard = 0;
  while (w.exits() < leave && ++guard < 6'000'000) (void)w.step(*sched);
  std::printf("departures: %llu/%zu after %llu steps\n",
              static_cast<unsigned long long>(w.exits()), leave,
              static_cast<unsigned long long>(w.steps()));

  bool converged = false;
  for (int block = 0; block < 4000 && !converged; ++block) {
    for (int i = 0; i < 300; ++i) (void)w.step(*sched);
    converged = check_topology(w, "ring").converged;
  }
  std::printf("sorted ring over the %zu stayers: %s\n", n - leave,
              converged ? "FORMED" : check_topology(w, "ring").detail.c_str());
  std::printf("connectivity violations during the whole run: %zu\n",
              safety.violations().size());
  w.remove_observer(&safety);

  // Print the final ring in key order for inspection.
  std::vector<ProcessId> stayers;
  for (ProcessId p = 0; p < n; ++p)
    if (w.mode(p) == Mode::Staying) stayers.push_back(p);
  std::sort(stayers.begin(), stayers.end(), [&](ProcessId a, ProcessId b) {
    return w.process(a).key() < w.process(b).key();
  });
  std::printf("ring order:");
  for (ProcessId p : stayers) std::printf(" %u", p);
  std::printf(" -> %u\n", stayers.empty() ? 0 : stayers.front());

  return converged && safety.ok() && w.exits() == leave ? 0 : 1;
}
