// Live mode: the departure protocol as real socket actors.
//
// Builds the same churn scenario the simulator examples use, but runs it
// on the NetRuntime — every process is an event-loop actor behind its own
// loopback UDP socket, messages travel as FDP1 wire frames, and a client
// workload issues key lookups against the staying members while the
// leavers depart. A monitor socket serves a live JSON snapshot of the run
// (process states, Φ, channel depths) to anyone who connects:
//
//   ./live_overlay [--n 24] [--seed 7] [--lookups 60] [--transport udp]
//
// While it runs:   curl -s telnet://127.0.0.1:<printed port>  (or nc)
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/monitors.hpp"
#include "analysis/scenario.hpp"
#include "analysis/workload.hpp"
#include "net/live_scenario.hpp"
#include "overlay/topology_checks.hpp"
#include "util/flags.hpp"

using namespace fdp;
using namespace fdp::net;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::size_t n = static_cast<std::size_t>(flags.get_int("n", 24));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const std::size_t lookups =
      static_cast<std::size_t>(flags.get_int("lookups", 60));
  const std::string transport = flags.get_string("transport", "udp");
  flags.reject_unknown();

  ScenarioConfig cfg;
  cfg.n = n;
  cfg.topology = "gnp";
  cfg.leave_fraction = 0.25;
  cfg.invalid_mode_prob = 0.2;  // start from a corrupted state on purpose
  cfg.seed = seed;

  NetConfig rcfg;
  rcfg.monitor = true;

  std::unique_ptr<Transport> tr;
  if (transport == "mem")
    tr = std::make_unique<MemTransport>();
  else
    tr = std::make_unique<UdpTransport>();

  LiveScenario sc =
      build_live_framework_scenario(cfg, "linearization", std::move(tr), rcfg);

  std::printf("live overlay: %zu actors on %s, %zu leaving\n", n,
              sc.net->substrate_name(), sc.leaving_count);
  std::printf("monitor socket: 127.0.0.1:%u (one JSON doc per connection)\n",
              sc.net->monitor_port());

  SafetyMonitor safety(*sc.net);
  sc.net->add_observer(&safety);

  WorkloadConfig wcfg;
  wcfg.total = lookups;
  wcfg.interval = 2;
  wcfg.absent_prob = 0.2;
  wcfg.seed = seed;
  std::vector<std::uint64_t> keys;
  for (ProcessId p = 0; p < sc.net->size(); ++p)
    keys.push_back(sc.net->process(p).key());
  LookupWorkload workload(sc.refs, std::move(keys), sc.leaving, wcfg);
  sc.net->add_observer(&workload);

  const int timeout_ms = transport == "mem" ? 0 : 1;
  for (int i = 0; i < 200'000; ++i) {
    workload.pump(*sc.net);
    sc.net->pump(timeout_ms);
    if (all_leaving_gone(*sc.net) && workload.all_issued()) break;
  }
  for (int i = 0; i < 4'000 && !workload.all_resolved(); ++i)
    sc.net->pump(timeout_ms);

  const WorkloadReport r = workload.report();
  std::printf("departures: %llu/%zu %s\n",
              static_cast<unsigned long long>(sc.net->exits()),
              sc.leaving_count,
              all_leaving_gone(*sc.net) ? "(all gone)" : "(STUCK)");
  std::printf("safety: %s\n", safety.ok() ? "no violations" : "VIOLATED");
  std::printf("lookups: %llu/%llu answered (%llu hits, %llu misses), "
              "p50/p95 latency %llu/%llu us\n",
              static_cast<unsigned long long>(r.resolved),
              static_cast<unsigned long long>(r.issued),
              static_cast<unsigned long long>(r.hits),
              static_cast<unsigned long long>(r.misses),
              static_cast<unsigned long long>(r.p50_us),
              static_cast<unsigned long long>(r.p95_us));

  // Let maintenance settle the survivors back into the sorted list.
  bool converged = false;
  for (int i = 0; i < 40'000 && !converged; ++i) {
    sc.net->pump(timeout_ms);
    if (i % 100 == 0)
      converged = check_topology(*sc.net, "linearization").converged;
  }
  std::printf("topology: %s\n",
              converged ? "sorted list re-formed over stayers"
                        : "still converging");
  return all_leaving_gone(*sc.net) && safety.ok() ? 0 : 1;
}
