// Churn on a live overlay: the Section-4 framework in action.
//
// A linearization overlay (sorted list) keeps serving its staying members
// while waves of nodes request departure. After each wave we wait for the
// FDP to exclude the leavers and for the list to re-form over the
// survivors — the paper's Theorem 4 as a running system.
//
//   ./churn_overlay [--n 18] [--waves 3] [--seed 7]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "analysis/experiment.hpp"
#include "core/framework.hpp"
#include "core/oracle.hpp"
#include "overlay/topology_checks.hpp"
#include "sim/world.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

using namespace fdp;

namespace {

/// One overlay member: wraps a Linearization instance in the framework.
Ref join(World& w, Mode mode, std::uint64_t key) {
  return w.spawn<FrameworkProcess>(mode, key, make_overlay("linearization"));
}

bool settle(World& w, const char* what, std::uint64_t budget) {
  auto sched = SchedulerSpec::of(SchedulerKind::Random).make();
  for (std::uint64_t used = 0; used < budget; used += 500) {
    for (int i = 0; i < 500; ++i) (void)w.step(*sched);
    if (check_topology(w, "linearization").converged) {
      std::printf("  %s: sorted list re-formed after <= %llu steps\n", what,
                  static_cast<unsigned long long>(used + 500));
      return true;
    }
  }
  std::printf("  %s: NOT converged (%s)\n", what,
              check_topology(w, "linearization").detail.c_str());
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::size_t n = static_cast<std::size_t>(flags.get_int("n", 18));
  const int waves = static_cast<int>(flags.get_int("waves", 3));
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 7)));
  flags.reject_unknown();

  // The membership plan: who leaves in which wave. A process's mode is
  // read-only, so we spawn each wave's members as mode=Leaving up front —
  // they participate in the overlay until their wave is "activated" by
  // simply letting the scheduler run (their timeout handles the rest).
  // To stage the churn, each wave lives in its own world era: survivors
  // of era k are re-seeded into era k+1... — simpler and true to the
  // model: ONE world, all modes fixed, and we verify the overlay works
  // for stayers while ALL leavers drain concurrently, wave by wave being
  // a report boundary.
  World w(rng());
  std::vector<Ref> refs;
  std::vector<std::uint64_t> keys;
  const std::size_t leavers = n / 3;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t key = rng() | 1;
    keys.push_back(key);
    refs.push_back(join(w, i < leavers ? Mode::Leaving : Mode::Staying, key));
  }
  // Random weakly connected bootstrap wiring.
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t parent = rng.below(i);
    w.process_as<FrameworkProcess>(static_cast<ProcessId>(i))
        .overlay_mut()
        .integrate(RefInfo{refs[parent], ModeInfo::Staying, keys[parent]});
  }
  w.set_oracle(make_single_oracle());

  std::printf("overlay of %zu nodes, %zu of them leaving\n", n, leavers);

  auto sched = SchedulerSpec::of(SchedulerKind::Random).make();
  const std::size_t per_wave = std::max<std::size_t>(1, leavers / waves);
  std::size_t reported = 0;
  for (int wave = 1; wave <= waves; ++wave) {
    const std::size_t target =
        std::min(leavers, reported + per_wave + (wave == waves ? leavers : 0));
    std::uint64_t guard = 0;
    while (w.exits() < target && ++guard < 4'000'000) (void)w.step(*sched);
    reported = w.exits();
    std::printf("wave %d: %llu departures completed (steps so far %llu)\n",
                wave, static_cast<unsigned long long>(w.exits()),
                static_cast<unsigned long long>(w.steps()));
    if (reported >= leavers) break;
  }
  if (w.exits() < leavers) {
    std::printf("not all leavers excluded within the budget\n");
    return 1;
  }

  const bool ok = settle(w, "after churn", 3'000'000);
  std::printf("total: %llu steps, %llu messages, %llu verify round-trips\n",
              static_cast<unsigned long long>(w.steps()),
              static_cast<unsigned long long>(w.sends()),
              static_cast<unsigned long long>([&] {
                std::uint64_t v = 0;
                for (ProcessId p = 0; p < w.size(); ++p)
                  if (auto* fp = dynamic_cast<const FrameworkProcess*>(
                          &w.process(p)))
                    v += fp->stats().verifies_sent;
                return v;
              }()));
  return ok ? 0 : 1;
}
