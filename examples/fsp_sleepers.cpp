// The Finite Sleep Problem: departures without an oracle.
//
// The same protocol, but leaving processes execute `sleep` instead of the
// oracle-guarded `exit`. We watch them doze off, poke one sleeper with a
// late message to show the wake-and-resettle behavior, and verify the
// final state is legitimate: every leaving process hibernating — asleep,
// empty channel, and unreachable from anything awake, which by the model
// means it will never wake again.
//
//   ./fsp_sleepers [--n 14] [--leave 0.4] [--seed 5]
#include <cstdio>

#include "analysis/experiment.hpp"
#include "util/flags.hpp"

using namespace fdp;

namespace {

void census(const World& w) {
  std::size_t awake = 0, asleep = 0;
  for (ProcessId p = 0; p < w.size(); ++p) {
    if (w.life(p) == LifeState::Awake) ++awake;
    if (w.life(p) == LifeState::Asleep) ++asleep;
  }
  std::printf("  census: %zu awake, %zu asleep, %llu wakes so far\n", awake,
              asleep, static_cast<unsigned long long>(w.wakes()));
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  ScenarioConfig cfg;
  cfg.n = static_cast<std::size_t>(flags.get_int("n", 14));
  cfg.leave_fraction = flags.get_double("leave", 0.4);
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 5));
  cfg.topology = "gnp";
  cfg.policy = DeparturePolicy::Sleep;  // the FSP variant
  cfg.invalid_mode_prob = 0.3;
  flags.reject_unknown();

  Scenario sc = build_departure_scenario(cfg);
  // Poison the oracle: the FSP must never consult it.
  sc.world->set_oracle([](const Substrate&, ProcessId) -> bool {
    std::fprintf(stderr, "BUG: oracle consulted in FSP mode\n");
    std::abort();
  });

  std::printf("%zu processes, %zu leaving — no oracle installed\n", cfg.n,
              sc.leaving_count);

  LegitimacyChecker checker(*sc.world, Exclusion::Hibernating);
  auto sched = SchedulerSpec::of(SchedulerKind::Random).make();
  std::uint64_t guard = 0;
  while (!(all_leaving_inactive(*sc.world) &&
           checker.legitimate(*sc.world))) {
    if (!sc.world->step(*sched) || ++guard > 3'000'000) {
      std::printf("did not settle\n");
      return 1;
    }
  }
  std::printf("all leaving processes hibernating after %llu steps\n",
              static_cast<unsigned long long>(sc.world->steps()));
  census(*sc.world);

  // Poke one sleeper: hand it a fresh reference to a stayer. It must wake,
  // route the reference away (anchor machinery), and fall asleep again.
  ProcessId sleeper = kNoProcess, stayer = kNoProcess;
  for (ProcessId p = 0; p < sc.world->size(); ++p) {
    if (sc.world->mode(p) == Mode::Leaving) sleeper = p;
    else stayer = p;
  }
  std::printf("poking sleeper %u with a reference to stayer %u...\n", sleeper,
              stayer);
  sc.world->post(sc.refs[sleeper],
                 Message::forward(RefInfo{sc.refs[stayer], ModeInfo::Staying,
                                          sc.world->process(stayer).key()}));
  guard = 0;
  while (!checker.legitimate(*sc.world)) {
    if (!sc.world->step(*sched) || ++guard > 1'000'000) {
      std::printf("did not resettle\n");
      return 1;
    }
  }
  std::printf("resettled after %llu more steps\n",
              static_cast<unsigned long long>(guard));
  census(*sc.world);

  // Closure: nothing can wake a hibernating process ever again.
  const std::uint64_t wakes_before = sc.world->wakes();
  for (int i = 0; i < 50'000; ++i) {
    if (!sc.world->step(*sched)) break;
  }
  std::printf("50k more steps: %llu additional wakes (hibernating = "
              "permanently asleep)\n",
              static_cast<unsigned long long>(sc.world->wakes() -
                                              wakes_before));
  return sc.world->wakes() == wakes_before ? 0 : 1;
}
