// Quickstart: the paper's protocol in ~60 lines.
//
// Build a small overlay of DepartureProcess nodes, mark some of them
// leaving, install the SINGLE oracle, and watch the self-stabilizing
// departure protocol exclude the leavers without ever disconnecting the
// stayers.
//
//   ./quickstart [--n 16] [--leave 0.25] [--seed 1] [--topology gnp]
#include <cstdio>

#include "analysis/experiment.hpp"
#include "core/potential.hpp"
#include "util/flags.hpp"

using namespace fdp;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  ScenarioConfig cfg;
  cfg.n = static_cast<std::size_t>(flags.get_int("n", 16));
  cfg.leave_fraction = flags.get_double("leave", 0.25);
  cfg.topology = flags.get_string("topology", "gnp");
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  // Make the initial state hostile: wrong beliefs, stray anchors, junk
  // messages in flight — the protocol must recover from all of it.
  cfg.invalid_mode_prob = flags.get_double("corruption", 0.4);
  cfg.random_anchor_prob = 0.4;
  cfg.inflight_per_node = 1.0;
  flags.reject_unknown();

  Scenario sc = build_departure_scenario(cfg);
  std::printf("spawned %zu processes on a '%s' overlay, %zu leaving\n",
              cfg.n, cfg.topology.c_str(), sc.leaving_count);
  std::printf("initial invalid-information potential phi = %llu\n",
              static_cast<unsigned long long>(phi(*sc.world)));

  LegitimacyChecker checker(*sc.world, Exclusion::Gone);
  auto sched = SchedulerSpec::of(SchedulerKind::Random).make();
  std::uint64_t next_report = 1;
  while (!(all_leaving_gone(*sc.world) && checker.legitimate(*sc.world))) {
    if (!sc.world->step(*sched)) break;
    if (sc.world->steps() >= next_report) {
      std::printf(
          "step %7llu: exits %llu/%zu, phi=%llu, live messages %llu\n",
          static_cast<unsigned long long>(sc.world->steps()),
          static_cast<unsigned long long>(sc.world->exits()),
          sc.leaving_count, static_cast<unsigned long long>(phi(*sc.world)),
          static_cast<unsigned long long>(sc.world->live_message_count()));
      next_report *= 2;
    }
    if (sc.world->steps() > 2'000'000) {
      std::printf("did not converge within the step budget\n");
      return 1;
    }
  }

  const auto verdict = checker.check(*sc.world);
  std::printf("\nlegitimate state reached after %llu steps:\n",
              static_cast<unsigned long long>(sc.world->steps()));
  std::printf("  every leaving process is gone:        %s\n",
              verdict.leaving_excluded ? "yes" : "no");
  std::printf("  every staying process is awake:       %s\n",
              verdict.staying_awake ? "yes" : "no");
  std::printf("  stayers still weakly connected:       %s\n",
              verdict.components_preserved ? "yes" : "no");
  std::printf("  messages sent in total:               %llu\n",
              static_cast<unsigned long long>(sc.world->sends()));
  return verdict.legitimate() ? 0 : 1;
}
