// Universal rewiring: Theorem 1 as an executable.
//
// Take any two weakly connected graphs on the same nodes and watch the
// constructive three-phase transformation (clique-up via Introduction,
// prune via Delegation+Fusion, orient via Reversal+Fusion) carry one into
// the other — with weak connectivity re-verified after every single
// primitive application.
//
//   ./universal_rewiring [--n 10] [--from line] [--to star] [--seed 1]
#include <cstdio>

#include "graph/generators.hpp"
#include "universality/planner.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace fdp;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::size_t n = static_cast<std::size_t>(flags.get_int("n", 10));
  const std::string from = flags.get_string("from", "line");
  const std::string to = flags.get_string("to", "star");
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 1)));
  flags.reject_unknown();

  const DiGraph start = gen::by_name(from.c_str(), n, rng);
  const DiGraph target = gen::by_name(to.c_str(), n, rng);

  std::printf("transforming '%s' (%llu edges) into '%s' (%llu edges), n=%zu\n",
              from.c_str(),
              static_cast<unsigned long long>(start.edge_count()), to.c_str(),
              static_cast<unsigned long long>(target.edge_count()), n);

  const TransformStats s =
      transform_graph(start, target, /*verify_connectivity=*/true);

  Table t("primitive applications by phase");
  t.set_header({"phase", "ops"});
  t.add_row({"A: introductions to the clique (" +
                 std::to_string(s.intro_rounds) + " rounds)",
             Table::num(s.phase_a_ops)});
  t.add_row({"B: delegation pruning to G''", Table::num(s.phase_b_ops)});
  t.add_row({"C: reversal orientation to G'", Table::num(s.phase_c_ops)});
  t.print();

  Table c("primitive mix");
  c.set_header({"introduction", "delegation", "fusion", "reversal"});
  c.add_row({Table::num(s.counts.introductions),
             Table::num(s.counts.delegations), Table::num(s.counts.fusions),
             Table::num(s.counts.reversals)});
  c.print();

  std::printf("target reached exactly: %s\n", s.success ? "yes" : "NO");
  std::printf("connectivity violations along the way: %llu (Lemma 1 says 0)\n",
              static_cast<unsigned long long>(s.connectivity_violations));
  return s.success && s.connectivity_violations == 0 ? 0 : 1;
}
