// Parallel seed sweep: the experiment API end to end.
//
// Describe a trial matrix as a validated ExperimentSpec, fan it across
// the ExperimentDriver's worker pool, and print the deterministic
// aggregate — identical for any --workers value; only the wall clock
// changes. Optionally dump one CSV row per trial.
//
//   ./parallel_sweep [--n 32] [--seeds 16] [--workers 0]
//                    [--sched adversarial] [--sched-delay 8]
//                    [--family departure] [--topology gnp]
//                    [--monitors 1] [--csv sweep.csv]
#include <cstdio>

#include "analysis/driver.hpp"
#include "util/flags.hpp"

using namespace fdp;

int main(int argc, char** argv) {
  Flags flags(argc, argv);

  ScenarioSpec scenario;
  const std::string family = flags.get_string("family", "departure");
  if (family == "framework") {
    scenario.family = ScenarioFamily::Framework;
    scenario.overlay = flags.get_string("overlay", "linearization");
  } else if (family == "baseline") {
    scenario.family = ScenarioFamily::Baseline;
  }
  scenario.config.n = static_cast<std::size_t>(flags.get_int("n", 32));
  scenario.config.topology = flags.get_string("topology", "gnp");
  scenario.config.leave_fraction = flags.get_double("leave", 0.25);
  scenario.config.invalid_mode_prob = flags.get_double("corruption", 0.3);
  scenario.config.random_anchor_prob = 0.3;
  scenario.config.inflight_per_node = 1.0;

  ExperimentSpec spec;
  spec.scenario(scenario)
      .scheduler(scheduler_spec_from_flags(flags, "adversarial"))
      .max_steps(static_cast<std::uint64_t>(
          flags.get_int("max-steps", 2'000'000)))
      .monitors(flags.get_int("monitors", 1) != 0, 16)
      .seeds(1, static_cast<std::uint64_t>(flags.get_int("seeds", 16)))
      .workers(static_cast<unsigned>(flags.get_int("workers", 0)));
  const std::string csv = flags.get_string("csv", "");
  flags.reject_unknown();

  const std::string problem = spec.validate();
  if (!problem.empty()) {
    std::fprintf(stderr, "invalid spec: %s\n", problem.c_str());
    return 2;
  }

  const ExperimentDriver driver;
  const ExperimentResult res = driver.run(spec);

  std::printf("%s x %s, seeds 1..%llu on %u worker(s): %.2fs wall\n",
              spec.scenario().label().c_str(), spec.scheduler().name(),
              static_cast<unsigned long long>(spec.seed_count()),
              res.workers_used, res.wall_seconds);
  const Aggregate& a = res.agg;
  std::printf("  solved          %llu/%llu (%s)\n",
              static_cast<unsigned long long>(a.solved),
              static_cast<unsigned long long>(a.trials),
              a.verdict().c_str());
  std::printf("  steps           mean %.0f  p50 %.0f  p95 %.0f\n",
              a.steps.mean(), a.steps.median(), a.steps.percentile(0.95));
  std::printf("  messages        mean %.0f  p95 %.0f\n", a.sends.mean(),
              a.sends.percentile(0.95));
  std::printf("  exits           %llu (expected %llu)\n",
              static_cast<unsigned long long>(a.total_exits),
              static_cast<unsigned long long>(a.expected_exits));
  std::printf("  phi drained     mean %.0f\n", a.phi_drain.mean());

  if (!csv.empty()) {
    const std::string err = write_trials_csv(csv, spec, res.trials);
    if (!err.empty()) {
      std::fprintf(stderr, "csv: %s\n", err.c_str());
      return 1;
    }
    std::printf("  per-trial CSV   %s (%zu rows)\n", csv.c_str(),
                res.trials.size());
  }
  return a.clean() ? 0 : 1;
}
