file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_universality.dir/bench_e2_universality.cpp.o"
  "CMakeFiles/bench_e2_universality.dir/bench_e2_universality.cpp.o.d"
  "bench_e2_universality"
  "bench_e2_universality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_universality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
