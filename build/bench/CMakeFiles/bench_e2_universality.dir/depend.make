# Empty dependencies file for bench_e2_universality.
# This may be replaced when dependencies are built.
