file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_necessity.dir/bench_e3_necessity.cpp.o"
  "CMakeFiles/bench_e3_necessity.dir/bench_e3_necessity.cpp.o.d"
  "bench_e3_necessity"
  "bench_e3_necessity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_necessity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
