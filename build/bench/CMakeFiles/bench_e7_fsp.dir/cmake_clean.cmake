file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_fsp.dir/bench_e7_fsp.cpp.o"
  "CMakeFiles/bench_e7_fsp.dir/bench_e7_fsp.cpp.o.d"
  "bench_e7_fsp"
  "bench_e7_fsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_fsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
