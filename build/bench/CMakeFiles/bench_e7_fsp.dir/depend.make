# Empty dependencies file for bench_e7_fsp.
# This may be replaced when dependencies are built.
