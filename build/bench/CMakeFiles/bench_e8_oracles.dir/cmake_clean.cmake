file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_oracles.dir/bench_e8_oracles.cpp.o"
  "CMakeFiles/bench_e8_oracles.dir/bench_e8_oracles.cpp.o.d"
  "bench_e8_oracles"
  "bench_e8_oracles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_oracles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
