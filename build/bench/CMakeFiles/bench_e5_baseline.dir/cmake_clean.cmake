file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_baseline.dir/bench_e5_baseline.cpp.o"
  "CMakeFiles/bench_e5_baseline.dir/bench_e5_baseline.cpp.o.d"
  "bench_e5_baseline"
  "bench_e5_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
