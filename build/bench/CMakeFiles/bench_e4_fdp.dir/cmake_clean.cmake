file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_fdp.dir/bench_e4_fdp.cpp.o"
  "CMakeFiles/bench_e4_fdp.dir/bench_e4_fdp.cpp.o.d"
  "bench_e4_fdp"
  "bench_e4_fdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_fdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
