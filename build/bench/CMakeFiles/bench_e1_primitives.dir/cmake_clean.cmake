file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_primitives.dir/bench_e1_primitives.cpp.o"
  "CMakeFiles/bench_e1_primitives.dir/bench_e1_primitives.cpp.o.d"
  "bench_e1_primitives"
  "bench_e1_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
