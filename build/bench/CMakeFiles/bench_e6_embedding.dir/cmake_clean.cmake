file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_embedding.dir/bench_e6_embedding.cpp.o"
  "CMakeFiles/bench_e6_embedding.dir/bench_e6_embedding.cpp.o.d"
  "bench_e6_embedding"
  "bench_e6_embedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
