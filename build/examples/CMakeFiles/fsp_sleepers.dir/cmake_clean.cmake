file(REMOVE_RECURSE
  "CMakeFiles/fsp_sleepers.dir/fsp_sleepers.cpp.o"
  "CMakeFiles/fsp_sleepers.dir/fsp_sleepers.cpp.o.d"
  "fsp_sleepers"
  "fsp_sleepers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsp_sleepers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
