# Empty compiler generated dependencies file for fsp_sleepers.
# This may be replaced when dependencies are built.
