# Empty compiler generated dependencies file for universal_rewiring.
# This may be replaced when dependencies are built.
