file(REMOVE_RECURSE
  "CMakeFiles/universal_rewiring.dir/universal_rewiring.cpp.o"
  "CMakeFiles/universal_rewiring.dir/universal_rewiring.cpp.o.d"
  "universal_rewiring"
  "universal_rewiring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/universal_rewiring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
