file(REMOVE_RECURSE
  "CMakeFiles/self_healing_ring.dir/self_healing_ring.cpp.o"
  "CMakeFiles/self_healing_ring.dir/self_healing_ring.cpp.o.d"
  "self_healing_ring"
  "self_healing_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/self_healing_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
