# Empty compiler generated dependencies file for self_healing_ring.
# This may be replaced when dependencies are built.
