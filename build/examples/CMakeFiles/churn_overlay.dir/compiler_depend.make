# Empty compiler generated dependencies file for churn_overlay.
# This may be replaced when dependencies are built.
