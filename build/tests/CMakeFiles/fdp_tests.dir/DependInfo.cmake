
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baseline.cpp" "tests/CMakeFiles/fdp_tests.dir/test_baseline.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_baseline.cpp.o.d"
  "/root/repo/tests/test_channel.cpp" "tests/CMakeFiles/fdp_tests.dir/test_channel.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_channel.cpp.o.d"
  "/root/repo/tests/test_chaos.cpp" "tests/CMakeFiles/fdp_tests.dir/test_chaos.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_chaos.cpp.o.d"
  "/root/repo/tests/test_components.cpp" "tests/CMakeFiles/fdp_tests.dir/test_components.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_components.cpp.o.d"
  "/root/repo/tests/test_connectivity.cpp" "tests/CMakeFiles/fdp_tests.dir/test_connectivity.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_connectivity.cpp.o.d"
  "/root/repo/tests/test_departure_convergence.cpp" "tests/CMakeFiles/fdp_tests.dir/test_departure_convergence.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_departure_convergence.cpp.o.d"
  "/root/repo/tests/test_departure_properties.cpp" "tests/CMakeFiles/fdp_tests.dir/test_departure_properties.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_departure_properties.cpp.o.d"
  "/root/repo/tests/test_departure_unit.cpp" "tests/CMakeFiles/fdp_tests.dir/test_departure_unit.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_departure_unit.cpp.o.d"
  "/root/repo/tests/test_determinism.cpp" "tests/CMakeFiles/fdp_tests.dir/test_determinism.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_determinism.cpp.o.d"
  "/root/repo/tests/test_digraph.cpp" "tests/CMakeFiles/fdp_tests.dir/test_digraph.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_digraph.cpp.o.d"
  "/root/repo/tests/test_dot.cpp" "tests/CMakeFiles/fdp_tests.dir/test_dot.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_dot.cpp.o.d"
  "/root/repo/tests/test_experiment.cpp" "tests/CMakeFiles/fdp_tests.dir/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_experiment.cpp.o.d"
  "/root/repo/tests/test_flags.cpp" "tests/CMakeFiles/fdp_tests.dir/test_flags.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_flags.cpp.o.d"
  "/root/repo/tests/test_framework.cpp" "tests/CMakeFiles/fdp_tests.dir/test_framework.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_framework.cpp.o.d"
  "/root/repo/tests/test_fsp.cpp" "tests/CMakeFiles/fdp_tests.dir/test_fsp.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_fsp.cpp.o.d"
  "/root/repo/tests/test_generators.cpp" "tests/CMakeFiles/fdp_tests.dir/test_generators.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_generators.cpp.o.d"
  "/root/repo/tests/test_legitimacy.cpp" "tests/CMakeFiles/fdp_tests.dir/test_legitimacy.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_legitimacy.cpp.o.d"
  "/root/repo/tests/test_modelcheck.cpp" "tests/CMakeFiles/fdp_tests.dir/test_modelcheck.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_modelcheck.cpp.o.d"
  "/root/repo/tests/test_neighbor_set.cpp" "tests/CMakeFiles/fdp_tests.dir/test_neighbor_set.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_neighbor_set.cpp.o.d"
  "/root/repo/tests/test_oracle.cpp" "tests/CMakeFiles/fdp_tests.dir/test_oracle.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_oracle.cpp.o.d"
  "/root/repo/tests/test_overlay_departures.cpp" "tests/CMakeFiles/fdp_tests.dir/test_overlay_departures.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_overlay_departures.cpp.o.d"
  "/root/repo/tests/test_overlay_units.cpp" "tests/CMakeFiles/fdp_tests.dir/test_overlay_units.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_overlay_units.cpp.o.d"
  "/root/repo/tests/test_overlays.cpp" "tests/CMakeFiles/fdp_tests.dir/test_overlays.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_overlays.cpp.o.d"
  "/root/repo/tests/test_planner.cpp" "tests/CMakeFiles/fdp_tests.dir/test_planner.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_planner.cpp.o.d"
  "/root/repo/tests/test_potential.cpp" "tests/CMakeFiles/fdp_tests.dir/test_potential.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_potential.cpp.o.d"
  "/root/repo/tests/test_primitives_audit.cpp" "tests/CMakeFiles/fdp_tests.dir/test_primitives_audit.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_primitives_audit.cpp.o.d"
  "/root/repo/tests/test_process_graph.cpp" "tests/CMakeFiles/fdp_tests.dir/test_process_graph.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_process_graph.cpp.o.d"
  "/root/repo/tests/test_reachability.cpp" "tests/CMakeFiles/fdp_tests.dir/test_reachability.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_reachability.cpp.o.d"
  "/root/repo/tests/test_rewriter.cpp" "tests/CMakeFiles/fdp_tests.dir/test_rewriter.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_rewriter.cpp.o.d"
  "/root/repo/tests/test_ring_wrap.cpp" "tests/CMakeFiles/fdp_tests.dir/test_ring_wrap.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_ring_wrap.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/fdp_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_scenario.cpp" "tests/CMakeFiles/fdp_tests.dir/test_scenario.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_scenario.cpp.o.d"
  "/root/repo/tests/test_scheduler.cpp" "tests/CMakeFiles/fdp_tests.dir/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_scheduler.cpp.o.d"
  "/root/repo/tests/test_skiplist.cpp" "tests/CMakeFiles/fdp_tests.dir/test_skiplist.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_skiplist.cpp.o.d"
  "/root/repo/tests/test_sleep_starts.cpp" "tests/CMakeFiles/fdp_tests.dir/test_sleep_starts.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_sleep_starts.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/fdp_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/fdp_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_world.cpp" "tests/CMakeFiles/fdp_tests.dir/test_world.cpp.o" "gcc" "tests/CMakeFiles/fdp_tests.dir/test_world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fdp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
