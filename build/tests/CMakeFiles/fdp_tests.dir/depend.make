# Empty dependencies file for fdp_tests.
# This may be replaced when dependencies are built.
