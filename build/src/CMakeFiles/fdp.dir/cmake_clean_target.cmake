file(REMOVE_RECURSE
  "libfdp.a"
)
