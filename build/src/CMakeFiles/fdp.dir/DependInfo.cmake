
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/experiment.cpp" "src/CMakeFiles/fdp.dir/analysis/experiment.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/analysis/experiment.cpp.o.d"
  "/root/repo/src/analysis/metrics.cpp" "src/CMakeFiles/fdp.dir/analysis/metrics.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/analysis/metrics.cpp.o.d"
  "/root/repo/src/analysis/modelcheck.cpp" "src/CMakeFiles/fdp.dir/analysis/modelcheck.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/analysis/modelcheck.cpp.o.d"
  "/root/repo/src/analysis/monitors.cpp" "src/CMakeFiles/fdp.dir/analysis/monitors.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/analysis/monitors.cpp.o.d"
  "/root/repo/src/analysis/scenario.cpp" "src/CMakeFiles/fdp.dir/analysis/scenario.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/analysis/scenario.cpp.o.d"
  "/root/repo/src/analysis/trace.cpp" "src/CMakeFiles/fdp.dir/analysis/trace.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/analysis/trace.cpp.o.d"
  "/root/repo/src/baseline/sorted_list_departure.cpp" "src/CMakeFiles/fdp.dir/baseline/sorted_list_departure.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/baseline/sorted_list_departure.cpp.o.d"
  "/root/repo/src/core/departure_process.cpp" "src/CMakeFiles/fdp.dir/core/departure_process.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/core/departure_process.cpp.o.d"
  "/root/repo/src/core/framework.cpp" "src/CMakeFiles/fdp.dir/core/framework.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/core/framework.cpp.o.d"
  "/root/repo/src/core/legitimacy.cpp" "src/CMakeFiles/fdp.dir/core/legitimacy.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/core/legitimacy.cpp.o.d"
  "/root/repo/src/core/oracle.cpp" "src/CMakeFiles/fdp.dir/core/oracle.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/core/oracle.cpp.o.d"
  "/root/repo/src/core/potential.cpp" "src/CMakeFiles/fdp.dir/core/potential.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/core/potential.cpp.o.d"
  "/root/repo/src/core/primitives.cpp" "src/CMakeFiles/fdp.dir/core/primitives.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/core/primitives.cpp.o.d"
  "/root/repo/src/graph/connectivity.cpp" "src/CMakeFiles/fdp.dir/graph/connectivity.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/graph/connectivity.cpp.o.d"
  "/root/repo/src/graph/digraph.cpp" "src/CMakeFiles/fdp.dir/graph/digraph.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/graph/digraph.cpp.o.d"
  "/root/repo/src/graph/dot.cpp" "src/CMakeFiles/fdp.dir/graph/dot.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/graph/dot.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/fdp.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/process_graph.cpp" "src/CMakeFiles/fdp.dir/graph/process_graph.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/graph/process_graph.cpp.o.d"
  "/root/repo/src/overlay/clique.cpp" "src/CMakeFiles/fdp.dir/overlay/clique.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/overlay/clique.cpp.o.d"
  "/root/repo/src/overlay/linearization.cpp" "src/CMakeFiles/fdp.dir/overlay/linearization.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/overlay/linearization.cpp.o.d"
  "/root/repo/src/overlay/overlay_protocol.cpp" "src/CMakeFiles/fdp.dir/overlay/overlay_protocol.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/overlay/overlay_protocol.cpp.o.d"
  "/root/repo/src/overlay/ring.cpp" "src/CMakeFiles/fdp.dir/overlay/ring.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/overlay/ring.cpp.o.d"
  "/root/repo/src/overlay/skiplist.cpp" "src/CMakeFiles/fdp.dir/overlay/skiplist.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/overlay/skiplist.cpp.o.d"
  "/root/repo/src/overlay/star.cpp" "src/CMakeFiles/fdp.dir/overlay/star.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/overlay/star.cpp.o.d"
  "/root/repo/src/overlay/topology_checks.cpp" "src/CMakeFiles/fdp.dir/overlay/topology_checks.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/overlay/topology_checks.cpp.o.d"
  "/root/repo/src/sim/channel.cpp" "src/CMakeFiles/fdp.dir/sim/channel.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/sim/channel.cpp.o.d"
  "/root/repo/src/sim/chaos.cpp" "src/CMakeFiles/fdp.dir/sim/chaos.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/sim/chaos.cpp.o.d"
  "/root/repo/src/sim/context.cpp" "src/CMakeFiles/fdp.dir/sim/context.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/sim/context.cpp.o.d"
  "/root/repo/src/sim/neighbor_set.cpp" "src/CMakeFiles/fdp.dir/sim/neighbor_set.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/sim/neighbor_set.cpp.o.d"
  "/root/repo/src/sim/process.cpp" "src/CMakeFiles/fdp.dir/sim/process.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/sim/process.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/CMakeFiles/fdp.dir/sim/scheduler.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/sim/scheduler.cpp.o.d"
  "/root/repo/src/sim/world.cpp" "src/CMakeFiles/fdp.dir/sim/world.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/sim/world.cpp.o.d"
  "/root/repo/src/universality/planner.cpp" "src/CMakeFiles/fdp.dir/universality/planner.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/universality/planner.cpp.o.d"
  "/root/repo/src/universality/reachability.cpp" "src/CMakeFiles/fdp.dir/universality/reachability.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/universality/reachability.cpp.o.d"
  "/root/repo/src/universality/rewriter.cpp" "src/CMakeFiles/fdp.dir/universality/rewriter.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/universality/rewriter.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/fdp.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/flags.cpp" "src/CMakeFiles/fdp.dir/util/flags.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/util/flags.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/fdp.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/fdp.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/fdp.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
