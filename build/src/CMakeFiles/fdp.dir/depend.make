# Empty dependencies file for fdp.
# This may be replaced when dependencies are built.
